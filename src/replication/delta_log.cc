#include "replication/delta_log.h"

#include <algorithm>
#include <filesystem>
#include <iomanip>
#include <sstream>
#include <utility>

#include "service/snapshot.h"
#include "util/wire.h"

namespace dynamicc {

namespace {

constexpr int kDoublePrecision = 17;  // round-trips IEEE doubles exactly

/// "delta-<epoch>.dat" -> epoch; "base-<epoch>" -> epoch.
bool ParseTaggedName(const std::string& name, const std::string& prefix,
                     const std::string& suffix, uint64_t* epoch) {
  if (name.size() <= prefix.size() + suffix.size()) return false;
  if (name.compare(0, prefix.size(), prefix) != 0) return false;
  if (name.compare(name.size() - suffix.size(), suffix.size(), suffix) != 0) {
    return false;
  }
  const std::string digits =
      name.substr(prefix.size(), name.size() - prefix.size() - suffix.size());
  if (digits.empty()) return false;
  uint64_t value = 0;
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
    value = value * 10 + static_cast<uint64_t>(c - '0');
  }
  *epoch = value;
  return true;
}

}  // namespace

DeltaLog::DeltaLog(std::string dir) : dir_(std::move(dir)) {}

Status DeltaLog::Init() const {
  std::error_code ec;
  std::filesystem::create_directories(dir_, ec);
  if (ec) {
    return Status::IoError("cannot create replication directory " + dir_ +
                           ": " + ec.message());
  }
  return Status::Ok();
}

std::string DeltaLog::DeltaPathFor(uint64_t epoch) const {
  return JoinPath(dir_, "delta-" + std::to_string(epoch) + ".dat");
}

std::string DeltaLog::BaseDirFor(uint64_t epoch) const {
  return JoinPath(dir_, "base-" + std::to_string(epoch));
}

Status DeltaLog::WriteDelta(
    uint64_t epoch, uint64_t pending_at_seal,
    const std::vector<ReplicationEvent>& events,
    uint64_t* bytes_out) const {
  std::ostringstream os;
  os << std::setprecision(kDoublePrecision);
  os << "events " << events.size() << "\n";
  for (const ReplicationEvent& event : events) {
    switch (event.kind) {
      case ReplicationEvent::Kind::kBatch: {
        os << "batch " << event.ops.size() << "\n";
        for (const DataOperation& op : event.ops) {
          os << static_cast<int>(op.kind) << " " << op.target << "\n";
          WriteRecordWire(os, op.record);
        }
        break;
      }
      case ReplicationEvent::Kind::kMigration:
        os << "migrate " << event.group << " " << event.to_shard << "\n";
        break;
      case ReplicationEvent::Kind::kBarrier: {
        os << "barrier "
           << (event.barrier == StreamObserver::Barrier::kObserve ? 0 : 1)
           << " " << event.hints.size();
        for (ObjectId hint : event.hints) os << " " << hint;
        os << "\n";
        break;
      }
    }
  }
  const std::string payload = os.str();
  std::ostringstream file;
  file << "dynamicc-delta " << kDeltaFormatVersion << " " << epoch << " "
       << pending_at_seal << " " << payload.size() << " " << std::hex
       << SnapshotChecksum(payload) << std::dec << "\n"
       << payload;
  const std::string bytes = file.str();
  if (bytes_out != nullptr) *bytes_out = bytes.size();
  return WriteFileAtomic(DeltaPathFor(epoch), bytes);
}

Status DeltaLog::ReadDelta(uint64_t epoch,
                           std::vector<ReplicationEvent>* events,
                           DeltaInfo* info) const {
  std::string bytes;
  Status status = ReadFileBytes(DeltaPathFor(epoch), &bytes);
  if (!status.ok()) return status;

  std::istringstream is(bytes);
  std::string magic;
  DeltaInfo header;
  uint64_t payload_size = 0, checksum = 0;
  if (!(is >> magic >> header.format_version >> header.epoch >>
        header.pending_at_seal >> payload_size >> std::hex >> checksum >>
        std::dec) ||
      magic != "dynamicc-delta") {
    return Status::InvalidArgument("not a dynamicc delta file: " +
                                   DeltaPathFor(epoch));
  }
  if (header.format_version != kDeltaFormatVersion) {
    return Status::InvalidArgument(
        "unsupported delta format version " +
        std::to_string(header.format_version) + " (expected " +
        std::to_string(kDeltaFormatVersion) + ")");
  }
  if (header.epoch != epoch) {
    return Status::InvalidArgument("delta file names epoch " +
                                   std::to_string(header.epoch) +
                                   ", expected " + std::to_string(epoch));
  }
  is.get();  // the newline ending the header
  const size_t payload_offset = static_cast<size_t>(is.tellg());
  if (payload_offset > bytes.size() ||
      bytes.size() - payload_offset != payload_size) {
    return Status::InvalidArgument(
        "delta payload is truncated or padded: " +
        std::to_string(bytes.size() - payload_offset) +
        " bytes, header says " + std::to_string(payload_size));
  }
  const std::string payload = bytes.substr(payload_offset);
  if (SnapshotChecksum(payload) != checksum) {
    return Status::InvalidArgument(DeltaPathFor(epoch) +
                                   " failed its checksum: delta is "
                                   "corrupted");
  }

  std::istringstream ps(payload);
  std::string tag;
  size_t event_count = 0;
  if (!(ps >> tag >> event_count) || tag != "events" ||
      event_count > payload.size()) {
    return Status::InvalidArgument("malformed delta event header");
  }
  header.event_count = event_count;
  events->clear();
  events->reserve(event_count);
  for (size_t e = 0; e < event_count; ++e) {
    if (!(ps >> tag)) {
      return Status::InvalidArgument("truncated delta event list");
    }
    ReplicationEvent event;
    if (tag == "batch") {
      event.kind = ReplicationEvent::Kind::kBatch;
      size_t op_count = 0;
      if (!(ps >> op_count) || op_count > payload.size()) {
        return Status::InvalidArgument("malformed delta batch header");
      }
      event.ops.resize(op_count);
      for (DataOperation& op : event.ops) {
        int kind = 0;
        if (!(ps >> kind >> op.target) || kind < 0 || kind > 2) {
          return Status::InvalidArgument("malformed delta operation");
        }
        op.kind = static_cast<DataOperation::Kind>(kind);
        status = ReadRecordWire(ps, payload.size(), &op.record);
        if (!status.ok()) return status;
      }
    } else if (tag == "migrate") {
      event.kind = ReplicationEvent::Kind::kMigration;
      if (!(ps >> event.group >> event.to_shard)) {
        return Status::InvalidArgument("malformed delta migration");
      }
    } else if (tag == "barrier") {
      event.kind = ReplicationEvent::Kind::kBarrier;
      int observe = 0;
      size_t hint_count = 0;
      if (!(ps >> observe >> hint_count) || hint_count > payload.size()) {
        return Status::InvalidArgument("malformed delta barrier");
      }
      event.barrier = observe == 0 ? StreamObserver::Barrier::kObserve
                                   : StreamObserver::Barrier::kDynamic;
      event.hints.resize(hint_count);
      for (ObjectId& hint : event.hints) {
        if (!(ps >> hint)) {
          return Status::InvalidArgument("malformed delta barrier hints");
        }
      }
    } else {
      return Status::InvalidArgument("unknown delta event kind: " + tag);
    }
    events->push_back(std::move(event));
  }
  if (info != nullptr) *info = header;
  return Status::Ok();
}

Status DeltaLog::List(State* state) const {
  state->bases.clear();
  state->deltas.clear();
  std::error_code ec;
  std::filesystem::directory_iterator it(dir_, ec);
  if (ec) {
    return Status::NotFound("cannot list replication directory " + dir_ +
                            ": " + ec.message());
  }
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    uint64_t epoch = 0;
    if (ParseTaggedName(name, "delta-", ".dat", &epoch)) {
      state->deltas.push_back(epoch);
    } else if (ParseTaggedName(name, "base-", "", &epoch)) {
      state->bases.push_back(epoch);
    }
    // Everything else — "*.tmp" in-flight deltas, "*.saving" snapshot
    // scratch — is an unpublished artifact and invisible to readers.
  }
  std::sort(state->bases.begin(), state->bases.end());
  std::sort(state->deltas.begin(), state->deltas.end());
  return Status::Ok();
}

Status DeltaLog::Compact(uint64_t new_base_epoch) const {
  State state;
  Status status = List(&state);
  if (!status.ok()) return status;
  // The previous base bounds which deltas live tailers may still need.
  uint64_t previous_base = 0;
  bool has_previous = false;
  for (uint64_t base : state.bases) {
    if (base < new_base_epoch) {
      previous_base = base;
      has_previous = true;
    }
  }
  const uint64_t delta_floor = has_previous ? previous_base : new_base_epoch;
  std::error_code ec;
  for (uint64_t base : state.bases) {
    if (base >= new_base_epoch) continue;
    std::filesystem::remove_all(BaseDirFor(base), ec);
    if (ec) {
      // A failed removal must surface (it latches into the session's
      // sticky status): otherwise stale artifacts accumulate while the
      // operator believes the log is bounded.
      return Status::IoError("compaction cannot remove " + BaseDirFor(base) +
                             ": " + ec.message());
    }
  }
  for (uint64_t delta : state.deltas) {
    if (delta > delta_floor) continue;
    std::filesystem::remove(DeltaPathFor(delta), ec);
    if (ec) {
      return Status::IoError("compaction cannot remove " +
                             DeltaPathFor(delta) + ": " + ec.message());
    }
  }
  return Status::Ok();
}

}  // namespace dynamicc
