#ifndef DYNAMICC_REPLICATION_DELTA_LOG_H_
#define DYNAMICC_REPLICATION_DELTA_LOG_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/operations.h"
#include "data/types.h"
#include "service/sharded_service.h"
#include "util/status.h"

namespace dynamicc {

/// On-disk replication journal: one directory holding
///
///   base-<E>/        full service snapshots (service/snapshot.h format,
///                    crash-atomic) cut at sealed epoch E — what a fresh
///                    follower restores.
///   delta-<E>.dat    one file per sealed epoch: every event the primary
///                    processed while epoch E was open, in serialization
///                    order. Checksummed and published atomically
///                    (written to "*.tmp", renamed), so a reader never
///                    sees a torn delta; truncation and corruption are
///                    rejected via the header's size + FNV-1a-64.
///
/// A delta carries the *admitted* stream verbatim — batches exactly as
/// the primary's ingest boundary accepted them, adds stamped with their
/// assigned global ids — rather than a pre-coalesced form: replaying it
/// through a follower's own ingest boundary then reproduces not just the
/// clustering but the admission-side counters and dense id assignment
/// byte for byte (coalescing, where wanted, happens in the follower's
/// own queues). Base + deltas together are the ROADMAP's incremental
/// snapshot: the pair materializes "the service at epoch E" for any
/// sealed E without the primary rewriting its full state per epoch.
struct ReplicationEvent {
  enum class Kind { kBatch, kMigration, kBarrier };
  Kind kind = Kind::kBatch;

  /// kBatch: one admitted batch in admission order (global-id targets).
  OperationBatch ops;

  /// kMigration: MigrateGroup(group, to_shard) — replayed to keep
  /// placement versions and group ownership in lockstep.
  uint64_t group = 0;
  uint32_t to_shard = 0;

  /// kBarrier: which barrier ran and the changed-object hints (global
  /// ids) its rounds were seeded with. Replaying barriers in stream
  /// order reproduces the primary's round/retrain schedule — models
  /// included — instead of approximating it with a follower-side cadence.
  StreamObserver::Barrier barrier = StreamObserver::Barrier::kDynamic;
  std::vector<ObjectId> hints;
};

/// Bumped whenever the delta layout changes incompatibly; ReadDelta
/// rejects other versions.
inline constexpr uint64_t kDeltaFormatVersion = 1;

/// Header of one delta file, readable without parsing its events.
struct DeltaInfo {
  uint64_t format_version = 0;
  uint64_t epoch = 0;
  uint64_t event_count = 0;
  /// Operations of epochs <= this one still queued (unapplied) on the
  /// primary when the epoch sealed — the primary's replication lag at
  /// the boundary (OperationLog::ExportRange at the seal).
  uint64_t pending_at_seal = 0;
};

/// Reader/writer for one replication directory. Stateless apart from
/// the path: the primary's ReplicationSession writes through one
/// instance while any number of follower processes read through their
/// own. Not thread-safe per instance; concurrent *processes* are safe
/// because every publication is an atomic rename.
class DeltaLog {
 public:
  explicit DeltaLog(std::string dir);

  const std::string& dir() const { return dir_; }

  /// Creates the directory (parents included) if needed.
  Status Init() const;

  std::string DeltaPathFor(uint64_t epoch) const;
  /// Where a base snapshot for sealed epoch `epoch` lives.
  std::string BaseDirFor(uint64_t epoch) const;

  /// Journals sealed epoch `epoch` crash-atomically. When `bytes_out`
  /// is non-null it receives the published file's size (header +
  /// payload) — the wire cost of shipping this delta.
  Status WriteDelta(uint64_t epoch, uint64_t pending_at_seal,
                    const std::vector<ReplicationEvent>& events,
                    uint64_t* bytes_out = nullptr) const;

  /// Reads, verifies (size + checksum + version) and parses one delta.
  /// `info` is optional.
  Status ReadDelta(uint64_t epoch, std::vector<ReplicationEvent>* events,
                   DeltaInfo* info = nullptr) const;

  /// What the directory currently holds, epochs ascending. In-flight
  /// "*.tmp" files and "*.saving" scratch directories are ignored.
  struct State {
    std::vector<uint64_t> bases;
    std::vector<uint64_t> deltas;
  };
  Status List(State* state) const;

  /// Compaction after a base snapshot at sealed epoch `new_base_epoch`
  /// was published: deletes every older base and every delta at or below
  /// the *previous* base's epoch. Deltas between the two bases are
  /// retained so a follower tailing live keeps advancing by replay (it
  /// already consumed everything older); a follower further behind than
  /// one base interval rebuilds from the new base instead. The log is
  /// therefore bounded by one base plus one compaction interval of
  /// deltas, regardless of stream length.
  Status Compact(uint64_t new_base_epoch) const;

 private:
  std::string dir_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_REPLICATION_DELTA_LOG_H_
