// Bounded exponential backoff for pollers and reconnecting clients.
//
// A pure policy object (no sleeping, no clock) so the schedule is
// unit-testable and the caller chooses how to wait. Progress resets
// the delay to the floor; consecutive misses double it up to the cap:
//
//     PollBackoff backoff;                     // 1, 2, 4, ... 256 ms
//     while (tailing) {
//       if (AdvancedAtLeastOneEpoch()) backoff.Reset();
//       else SleepMs(backoff.NextDelayMs());   // caller sleeps
//     }
//
// Used by the follower delta-directory tail loop and the DeltaStream
// client's reconnect path (which also counts net.reconnects). The
// current delay is exported through replication.poll_backoff_ms so a
// stalled transport is visible in metrics: the gauge pinned at the cap
// means "polling hard, nothing arriving".
#ifndef DYNAMICC_REPLICATION_BACKOFF_H_
#define DYNAMICC_REPLICATION_BACKOFF_H_

#include <cstdint>

namespace dynamicc {

class PollBackoff {
 public:
  struct Options {
    uint64_t initial_ms = 1;
    uint64_t max_ms = 256;
    uint64_t multiplier = 2;
  };

  PollBackoff() : PollBackoff(Options{}) {}
  explicit PollBackoff(Options options) : options_(options) {
    if (options_.initial_ms == 0) options_.initial_ms = 1;
    if (options_.max_ms < options_.initial_ms) {
      options_.max_ms = options_.initial_ms;
    }
    if (options_.multiplier < 2) options_.multiplier = 2;
    next_ms_ = options_.initial_ms;
  }

  // The delay to wait before the next attempt. Each call escalates the
  // following delay (call once per missed poll).
  uint64_t NextDelayMs() {
    uint64_t delay = next_ms_;
    ++misses_;
    if (next_ms_ >= options_.max_ms / options_.multiplier) {
      next_ms_ = options_.max_ms;
    } else {
      next_ms_ *= options_.multiplier;
    }
    return delay;
  }

  // Progress observed: drop back to the floor.
  void Reset() {
    next_ms_ = options_.initial_ms;
    misses_ = 0;
  }

  // The delay the next NextDelayMs() call would return.
  uint64_t current_ms() const { return next_ms_; }
  // Consecutive misses since the last Reset().
  uint64_t misses() const { return misses_; }

 private:
  Options options_;
  uint64_t next_ms_ = 1;
  uint64_t misses_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_REPLICATION_BACKOFF_H_
