#ifndef DYNAMICC_BASELINE_GREEDY_H_
#define DYNAMICC_BASELINE_GREEDY_H_

#include <cstddef>
#include <vector>

#include "cluster/engine.h"
#include "objective/objective.h"

namespace dynamicc {

/// The state-of-the-art incremental baseline, modeled on Gruenheid et al.
/// [26] ("Greedy" in the paper's evaluation): starting from the clusters
/// affected by this round's data operations, greedily applies the best
/// improving operator among merge / split / move in the affected
/// neighborhood, propagating dirtiness, until no operator improves the
/// objective. Terminates in polynomial time; evaluates many more objective
/// deltas than DynamicC, which is exactly the overhead DynamicC's model
/// avoids (§7.2).
class GreedyIncremental {
 public:
  struct Options {
    size_t max_operations = 100000;
    /// Cap on move candidates (boundary members) examined per cluster.
    size_t max_move_checks = 16;
    double tolerance = 1e-9;
  };

  explicit GreedyIncremental(const ObjectiveFunction* objective);
  GreedyIncremental(const ObjectiveFunction* objective, Options options);

  struct Report {
    size_t merges = 0;
    size_t splits = 0;
    size_t moves = 0;
    /// Objective-delta evaluations performed (the latency driver).
    size_t delta_evaluations = 0;
  };

  /// Re-clusters incrementally around the changed objects.
  Report Process(ClusteringEngine* engine,
                 const std::vector<ObjectId>& changed) const;

 private:
  const ObjectiveFunction* objective_;
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_BASELINE_GREEDY_H_
