#include "baseline/greedy.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_set>

#include "util/logging.h"

namespace dynamicc {

namespace {

enum class OpKind { kNone, kMerge, kSplit, kMove };

struct BestOp {
  OpKind kind = OpKind::kNone;
  double delta = 0.0;
  ClusterId other = kInvalidCluster;  // merge partner / move target
  ObjectId object = kInvalidObject;   // split/move subject
};

}  // namespace

GreedyIncremental::GreedyIncremental(const ObjectiveFunction* objective)
    : GreedyIncremental(objective, Options{}) {}

GreedyIncremental::GreedyIncremental(const ObjectiveFunction* objective,
                                     Options options)
    : objective_(objective), options_(options) {
  DYNAMICC_CHECK(objective != nullptr);
}

GreedyIncremental::Report GreedyIncremental::Process(
    ClusteringEngine* engine, const std::vector<ObjectId>& changed) const {
  Report report;

  // Worklist of dirty clusters, seeded by the changed objects' clusters and
  // their inter neighbors.
  std::deque<ClusterId> worklist;
  std::unordered_set<ClusterId> queued;
  auto enqueue = [&worklist, &queued](ClusterId cluster) {
    if (cluster == kInvalidCluster) return;
    if (queued.insert(cluster).second) worklist.push_back(cluster);
  };
  for (ObjectId object : changed) {
    ClusterId cluster = engine->clustering().ClusterOf(object);
    if (cluster == kInvalidCluster) continue;
    enqueue(cluster);
    for (ClusterId neighbor : engine->stats().InterNeighbors(cluster)) {
      enqueue(neighbor);
    }
  }

  size_t operations = 0;
  while (!worklist.empty() && operations < options_.max_operations) {
    ClusterId cluster = worklist.front();
    worklist.pop_front();
    queued.erase(cluster);
    if (!engine->clustering().HasCluster(cluster)) continue;

    BestOp best;
    // --- merge candidates: every inter neighbor.
    for (ClusterId neighbor : engine->stats().InterNeighbors(cluster)) {
      double delta = objective_->MergeDelta(*engine, cluster, neighbor);
      ++report.delta_evaluations;
      if (delta < best.delta) {
        best = {OpKind::kMerge, delta, neighbor, kInvalidObject};
      }
    }

    size_t cluster_size = engine->clustering().ClusterSize(cluster);
    if (cluster_size >= 2) {
      // --- split candidate: the worst-fitting member.
      ObjectId worst = kInvalidObject;
      double worst_weight = std::numeric_limits<double>::infinity();
      for (ObjectId member : engine->clustering().Members(cluster)) {
        double weight = engine->stats().SumToCluster(member, cluster);
        if (weight < worst_weight) {
          worst_weight = weight;
          worst = member;
        }
      }
      if (worst != kInvalidObject) {
        double delta = objective_->SplitDelta(*engine, cluster, {worst});
        ++report.delta_evaluations;
        if (delta < best.delta) {
          best = {OpKind::kSplit, delta, kInvalidCluster, worst};
        }
      }
    }

    // --- move candidates: boundary members to their best external cluster.
    size_t checks = 0;
    for (ObjectId member : engine->clustering().Members(cluster)) {
      if (checks >= options_.max_move_checks) break;
      ClusterId target = kInvalidCluster;
      double target_sim = 0.0;
      for (const auto& [other, sim] : engine->graph().Neighbors(member)) {
        ClusterId other_cluster = engine->clustering().ClusterOf(other);
        if (other_cluster == kInvalidCluster || other_cluster == cluster) {
          continue;
        }
        if (sim > target_sim) {
          target_sim = sim;
          target = other_cluster;
        }
      }
      if (target == kInvalidCluster) continue;
      ++checks;
      if (cluster_size == 1) continue;  // a singleton move == merge, handled
      double delta = objective_->MoveDelta(*engine, member, target);
      ++report.delta_evaluations;
      if (delta < best.delta) {
        best = {OpKind::kMove, delta, target, member};
      }
    }

    if (best.kind == OpKind::kNone || best.delta >= -options_.tolerance) {
      continue;  // cluster is locally stable
    }

    switch (best.kind) {
      case OpKind::kMerge: {
        ClusterId merged = engine->Merge(cluster, best.other);
        enqueue(merged);
        for (ClusterId n : engine->stats().InterNeighbors(merged)) enqueue(n);
        ++report.merges;
        break;
      }
      case OpKind::kSplit: {
        ClusterId fresh = engine->SplitOut(cluster, {best.object});
        enqueue(cluster);
        enqueue(fresh);
        ++report.splits;
        break;
      }
      case OpKind::kMove: {
        engine->Move(best.object, best.other);
        if (engine->clustering().HasCluster(cluster)) enqueue(cluster);
        enqueue(best.other);
        ++report.moves;
        break;
      }
      case OpKind::kNone:
        break;
    }
    ++operations;
  }
  return report;
}

}  // namespace dynamicc
