#ifndef DYNAMICC_BASELINE_NAIVE_H_
#define DYNAMICC_BASELINE_NAIVE_H_

#include <vector>

#include "cluster/engine.h"
#include "data/types.h"

namespace dynamicc {

/// The Naive incremental baseline (§7.1): each new/updated object is
/// compared against existing clusters and joins the most similar one when
/// the average similarity clears a threshold — otherwise it stays a
/// singleton. Merge-only: the cluster structure is never revisited, no
/// objective score is computed. Fast but quality decays as the structure
/// drifts (Fig. 6, Table 2).
class NaiveIncremental {
 public:
  struct Options {
    /// Minimum average similarity to join an existing cluster.
    double join_threshold = 0.3;
    /// Always join the best cluster regardless of the threshold (used for
    /// fixed-k tasks like k-means, where a new singleton would violate the
    /// cluster-count constraint).
    bool always_join = false;
    /// Choose the target cluster by nearest centroid over the records'
    /// numeric vectors instead of by average graph similarity — the
    /// natural "closest cluster" notion for k-means geometry. Requires
    /// numeric records.
    bool nearest_centroid = false;
  };

  NaiveIncremental();
  explicit NaiveIncremental(Options options);

  /// Places each changed object (already a singleton after §6.1 initial
  /// processing) into its closest cluster, if any qualifies.
  void Process(ClusteringEngine* engine,
               const std::vector<ObjectId>& changed) const;

 private:
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_BASELINE_NAIVE_H_
