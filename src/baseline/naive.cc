#include "baseline/naive.h"

#include <cmath>
#include <iterator>
#include <limits>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/logging.h"

namespace dynamicc {

namespace {

/// Per-cluster centroids of the current clustering (O(n·d)).
std::unordered_map<ClusterId, std::vector<double>> Centroids(
    const ClusteringEngine& engine) {
  std::unordered_map<ClusterId, std::vector<double>> centroids;
  const Dataset& dataset = engine.graph().dataset();
  for (ClusterId cluster : engine.clustering().ClusterIds()) {
    const auto& members = engine.clustering().Members(cluster);
    std::vector<double> sum;
    for (ObjectId member : members) {
      const auto& point = dataset.Get(member).numeric;
      if (sum.empty()) sum.assign(point.size(), 0.0);
      for (size_t d = 0; d < point.size(); ++d) sum[d] += point[d];
    }
    for (double& v : sum) v /= static_cast<double>(members.size());
    centroids[cluster] = std::move(sum);
  }
  return centroids;
}

double SquaredDistance(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

}  // namespace

NaiveIncremental::NaiveIncremental() : NaiveIncremental(Options{}) {}

NaiveIncremental::NaiveIncremental(Options options) : options_(options) {}

void NaiveIncremental::Process(ClusteringEngine* engine,
                               const std::vector<ObjectId>& changed) const {
  if (options_.nearest_centroid) {
    // k-means style assignment: each changed singleton joins the
    // *pre-existing* cluster with the nearest centroid. The fresh
    // singletons themselves are not candidates — otherwise new points
    // daisy-chain into brand-new clusters and k drifts.
    std::unordered_set<ObjectId> changed_set(changed.begin(), changed.end());
    auto centroids = Centroids(*engine);
    for (auto it = centroids.begin(); it != centroids.end();) {
      const auto& members = engine->clustering().Members(it->first);
      bool fresh_singleton =
          members.size() == 1 && changed_set.count(*members.begin()) > 0;
      it = fresh_singleton ? centroids.erase(it) : std::next(it);
    }
    const Dataset& dataset = engine->graph().dataset();
    for (ObjectId object : changed) {
      ClusterId own = engine->clustering().ClusterOf(object);
      if (own == kInvalidCluster) continue;
      if (engine->clustering().ClusterSize(own) != 1) continue;
      const auto& point = dataset.Get(object).numeric;
      ClusterId best = kInvalidCluster;
      double best_distance = std::numeric_limits<double>::infinity();
      for (const auto& [cluster, centroid] : centroids) {
        if (cluster == own) continue;
        if (!engine->clustering().HasCluster(cluster)) continue;
        double d = SquaredDistance(point, centroid);
        if (d < best_distance) {
          best_distance = d;
          best = cluster;
        }
      }
      if (best != kInvalidCluster) {
        // The target keeps its id (and stale centroid — acceptable drift
        // for a baseline within one batch).
        engine->Merge(best, own);
      }
    }
    return;
  }
  for (ObjectId object : changed) {
    ClusterId own = engine->clustering().ClusterOf(object);
    if (own == kInvalidCluster) continue;  // removed meanwhile
    if (engine->clustering().ClusterSize(own) != 1) continue;  // already out

    // Candidate clusters: those holding a graph neighbor of the object.
    std::unordered_set<ClusterId> candidates;
    for (const auto& [other, sim] : engine->graph().Neighbors(object)) {
      (void)sim;
      ClusterId cluster = engine->clustering().ClusterOf(other);
      if (cluster != kInvalidCluster && cluster != own) {
        candidates.insert(cluster);
      }
    }
    ClusterId best = kInvalidCluster;
    double best_avg = options_.always_join ? 0.0 : options_.join_threshold;
    for (ClusterId cluster : candidates) {
      double avg =
          engine->stats().SumToCluster(object, cluster) /
          static_cast<double>(engine->clustering().ClusterSize(cluster));
      if (avg >= best_avg) {
        best_avg = avg;
        best = cluster;
      }
    }
    if (best != kInvalidCluster) {
      engine->Merge(best, own);
    }
  }
}

}  // namespace dynamicc
