#include "objective/db_index.h"

#include <algorithm>
#include <limits>
#include <unordered_set>

#include "util/logging.h"

namespace dynamicc {

namespace {
constexpr ClusterId kSyntheticCluster =
    std::numeric_limits<ClusterId>::max() - 1;

double Scatter(double size, double intra, double singleton_scatter) {
  if (size <= 1.0) return singleton_scatter;  // "unproven" prior
  double pairs = 0.5 * size * (size - 1.0);
  double avg = intra / pairs;
  return std::clamp(1.0 - avg, 0.0, 1.0);
}
}  // namespace

DbIndexObjective::DbIndexObjective(double separation_floor,
                                   double singleton_scatter)
    : separation_floor_(separation_floor),
      singleton_scatter_(singleton_scatter) {
  DYNAMICC_CHECK_GT(separation_floor, 0.0);
  DYNAMICC_CHECK_GE(singleton_scatter, 0.0);
  DYNAMICC_CHECK_LE(singleton_scatter, 1.0);
}

DbIndexObjective::ViewMap DbIndexObjective::BuildViews(
    const ClusteringEngine& engine) const {
  ViewMap views;
  const auto& clustering = engine.clustering();
  for (ClusterId c : clustering.ClusterIds()) {
    View& view = views[c];
    view.size = static_cast<double>(clustering.ClusterSize(c));
    view.intra = engine.stats().IntraSum(c);
  }
  engine.stats().ForEachInter([&views](ClusterId a, ClusterId b, double sum) {
    views[a].inter[b] = sum;
    views[b].inter[a] = sum;
  });
  return views;
}

double DbIndexObjective::ScoreViews(const ViewMap& views) const {
  if (views.empty()) return 0.0;
  // Precompute scatters and the top-2 scatter values for the non-neighbor
  // bound (for j with no inter edges, M_ij == 1 so the ratio is S_i + S_j).
  std::unordered_map<ClusterId, double> scatter;
  scatter.reserve(views.size());
  double top1 = -1.0, top2 = -1.0;
  ClusterId top1_id = kInvalidCluster;
  for (const auto& [c, view] : views) {
    double s = Scatter(view.size, view.intra, singleton_scatter_);
    scatter[c] = s;
    if (s > top1) {
      top2 = top1;
      top1 = s;
      top1_id = c;
    } else if (s > top2) {
      top2 = s;
    }
  }
  if (views.size() == 1) return scatter.begin()->second;

  double total = 0.0;
  for (const auto& [c, view] : views) {
    double s_c = scatter[c];
    double best_other_scatter = (c == top1_id) ? top2 : top1;
    double best = s_c + best_other_scatter;  // non-neighbor bound (M = 1)
    for (const auto& [other, sum] : view.inter) {
      auto it = views.find(other);
      DYNAMICC_CHECK(it != views.end());
      double avg_inter = sum / (view.size * it->second.size);
      double m = std::max(1.0 - avg_inter, separation_floor_);
      double ratio = (s_c + scatter[other]) / m;
      best = std::max(best, ratio);
    }
    total += best;
  }
  return total / static_cast<double>(views.size());
}

double DbIndexObjective::Evaluate(const ClusteringEngine& engine) const {
  return ScoreViews(BuildViews(engine));
}

void DbIndexObjective::ApplyMerge(ViewMap* views, ClusterId a, ClusterId b) {
  DYNAMICC_CHECK_NE(a, b);
  View& va = (*views)[a];
  View vb = std::move((*views)[b]);
  views->erase(b);
  double inter_ab = 0.0;
  auto ab = va.inter.find(b);
  if (ab != va.inter.end()) {
    inter_ab = ab->second;
    va.inter.erase(ab);
  }
  va.intra += vb.intra + inter_ab;
  va.size += vb.size;
  for (const auto& [other, sum] : vb.inter) {
    if (other == a) continue;
    va.inter[other] += sum;
    // All referenced clusters already have views, so at() never inserts
    // (an operator[] insert could rehash and invalidate `va`).
    View& vo = views->at(other);
    vo.inter.erase(b);
    vo.inter[a] += sum;
  }
}

void DbIndexObjective::ApplySplit(ViewMap* views,
                                  const ClusteringEngine& engine,
                                  ClusterId cluster,
                                  const std::vector<ObjectId>& part,
                                  ClusterId fresh_id) {
  const auto& clustering = engine.clustering();
  const auto& members = clustering.Members(cluster);
  std::unordered_set<ObjectId> in_part(part.begin(), part.end());
  DYNAMICC_CHECK_LT(part.size(), members.size());

  View& original = (*views)[cluster];
  View fresh;
  fresh.size = static_cast<double>(part.size());
  original.size -= fresh.size;

  for (ObjectId object : part) {
    DYNAMICC_CHECK_EQ(clustering.ClusterOf(object), cluster);
    for (const auto& [other, sim] : engine.graph().Neighbors(object)) {
      if (in_part.count(other) > 0) {
        // Pair inside the part: count once (when object < other).
        if (object < other) fresh.intra += sim;
        continue;
      }
      if (members.count(other) > 0) {
        // Pair between part and rest: was intra, becomes inter.
        original.intra -= sim;
        original.inter[fresh_id] += sim;
        fresh.inter[cluster] += sim;
        continue;
      }
      // Pair to some other cluster: re-attribute its share.
      ClusterId other_cluster = clustering.ClusterOf(other);
      if (other_cluster == kInvalidCluster) continue;
      original.inter[other_cluster] -= sim;
      if (original.inter[other_cluster] < 1e-12) {
        original.inter.erase(other_cluster);
      }
      fresh.inter[other_cluster] += sim;
      View& vo = views->at(other_cluster);  // at(): see ApplyMerge note
      vo.inter[cluster] -= sim;
      if (vo.inter[cluster] < 1e-12) vo.inter.erase(cluster);
      vo.inter[fresh_id] += sim;
    }
  }
  // Pairs inside the part were counted in original.intra as well.
  original.intra -= fresh.intra;
  (*views)[fresh_id] = std::move(fresh);
}

double DbIndexObjective::MergeDelta(const ClusteringEngine& engine,
                                    ClusterId a, ClusterId b) const {
  ViewMap views = BuildViews(engine);
  double before = ScoreViews(views);
  ApplyMerge(&views, a, b);
  return ScoreViews(views) - before;
}

double DbIndexObjective::SplitDelta(const ClusteringEngine& engine,
                                    ClusterId cluster,
                                    const std::vector<ObjectId>& part) const {
  ViewMap views = BuildViews(engine);
  double before = ScoreViews(views);
  ApplySplit(&views, engine, cluster, part, kSyntheticCluster);
  return ScoreViews(views) - before;
}

double DbIndexObjective::MoveDelta(const ClusteringEngine& engine,
                                   ObjectId object, ClusterId to) const {
  ClusterId from = engine.clustering().ClusterOf(object);
  DYNAMICC_CHECK_NE(from, kInvalidCluster);
  DYNAMICC_CHECK_NE(from, to);
  ViewMap views = BuildViews(engine);
  double before = ScoreViews(views);
  if (engine.clustering().ClusterSize(from) == 1) {
    ApplyMerge(&views, to, from);
  } else {
    ApplySplit(&views, engine, from, {object}, kSyntheticCluster);
    ApplyMerge(&views, to, kSyntheticCluster);
  }
  return ScoreViews(views) - before;
}

}  // namespace dynamicc
