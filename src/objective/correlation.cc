#include "objective/correlation.h"

#include <unordered_set>

#include "util/logging.h"

namespace dynamicc {

namespace {

/// Count of unordered pairs in a set of n objects.
double PairCount(double n) { return 0.5 * n * (n - 1.0); }

/// Sum of similarities and pair count between `part` and the rest of
/// `cluster`.
struct CrossStats {
  double sum = 0.0;
  double count = 0.0;
};

CrossStats CrossToRest(const ClusteringEngine& engine, ClusterId cluster,
                       const std::vector<ObjectId>& part) {
  const auto& members = engine.clustering().Members(cluster);
  std::unordered_set<ObjectId> in_part(part.begin(), part.end());
  CrossStats stats;
  stats.count = static_cast<double>(part.size()) *
                static_cast<double>(members.size() - part.size());
  for (ObjectId object : part) {
    DYNAMICC_CHECK_EQ(engine.clustering().ClusterOf(object), cluster);
    for (const auto& [other, sim] : engine.graph().Neighbors(object)) {
      if (in_part.count(other) > 0) continue;
      if (members.count(other) > 0) stats.sum += sim;
    }
  }
  return stats;
}

}  // namespace

double CorrelationObjective::Evaluate(const ClusteringEngine& engine) const {
  const auto& clustering = engine.clustering();
  const auto& stats = engine.stats();
  double intra_pairs = 0.0;
  for (ClusterId cluster : clustering.ClusterIds()) {
    intra_pairs += PairCount(static_cast<double>(clustering.ClusterSize(cluster)));
  }
  return intra_pairs - stats.TotalIntraSum() + stats.TotalInterSum();
}

double CorrelationObjective::MergeDelta(const ClusteringEngine& engine,
                                        ClusterId a, ClusterId b) const {
  // |a|*|b| cross pairs flip from inter (cost s) to intra (cost 1-s):
  // delta = Σ (1-s) - Σ s = |a||b| - 2 * inter_sum(a,b).
  double cross_pairs =
      static_cast<double>(engine.clustering().ClusterSize(a)) *
      static_cast<double>(engine.clustering().ClusterSize(b));
  return cross_pairs - 2.0 * engine.stats().InterSum(a, b);
}

double CorrelationObjective::SplitDelta(
    const ClusteringEngine& engine, ClusterId cluster,
    const std::vector<ObjectId>& part) const {
  // Cross pairs flip from intra (cost 1-s) to inter (cost s):
  // delta = 2 * cross_sum - cross_count.
  CrossStats cross = CrossToRest(engine, cluster, part);
  return 2.0 * cross.sum - cross.count;
}

double CorrelationObjective::MoveDelta(const ClusteringEngine& engine,
                                       ObjectId object, ClusterId to) const {
  ClusterId from = engine.clustering().ClusterOf(object);
  DYNAMICC_CHECK_NE(from, kInvalidCluster);
  DYNAMICC_CHECK_NE(from, to);
  const auto& stats = engine.stats();
  double from_size = static_cast<double>(engine.clustering().ClusterSize(from));
  double to_size = static_cast<double>(engine.clustering().ClusterSize(to));
  double sum_from = stats.SumToCluster(object, from);
  double sum_to = stats.SumToCluster(object, to);
  // Leaving `from`: (|from|-1) pairs flip intra->inter.
  double leave = 2.0 * sum_from - (from_size - 1.0);
  // Joining `to`: |to| pairs flip inter->intra.
  double join = to_size - 2.0 * sum_to;
  return leave + join;
}

}  // namespace dynamicc
