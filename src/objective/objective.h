#ifndef DYNAMICC_OBJECTIVE_OBJECTIVE_H_
#define DYNAMICC_OBJECTIVE_OBJECTIVE_H_

#include <vector>

#include "cluster/engine.h"
#include "data/types.h"

namespace dynamicc {

/// Clustering objective function (lower is better for every implementation
/// in this library). Besides full evaluation, implementations provide exact
/// *deltas* for the three structural operations — the quantity every
/// algorithm (hill-climbing, Greedy, DynamicC's verification step) actually
/// needs. Deltas are defined as `score(after) - score(before)`, so a
/// negative delta is an improvement.
class ObjectiveFunction {
 public:
  virtual ~ObjectiveFunction() = default;

  virtual const char* Name() const = 0;

  /// Score of the engine's current clustering.
  virtual double Evaluate(const ClusteringEngine& engine) const = 0;

  /// Score change if clusters `a` and `b` merged.
  virtual double MergeDelta(const ClusteringEngine& engine, ClusterId a,
                            ClusterId b) const = 0;

  /// Score change if `part` (strict non-empty subset of `cluster`) moved to
  /// a brand-new cluster.
  virtual double SplitDelta(const ClusteringEngine& engine, ClusterId cluster,
                            const std::vector<ObjectId>& part) const = 0;

  /// Score change if `object` moved from its cluster to `to`.
  virtual double MoveDelta(const ClusteringEngine& engine, ObjectId object,
                           ClusterId to) const = 0;
};

/// Decides whether a *predicted* change should actually be applied — the
/// verification step that lets DynamicC discard false-positive predictions
/// (§5.4 "Avoiding False Positives"). The default implementation wraps an
/// ObjectiveFunction; DBSCAN (which has no objective) supplies a
/// core-point-stability validator instead (§7.2.1).
class ChangeValidator {
 public:
  virtual ~ChangeValidator() = default;

  virtual bool MergeImproves(const ClusteringEngine& engine, ClusterId a,
                             ClusterId b) const = 0;
  virtual bool SplitImproves(const ClusteringEngine& engine, ClusterId cluster,
                             const std::vector<ObjectId>& part) const = 0;
  virtual bool MoveImproves(const ClusteringEngine& engine, ObjectId object,
                            ClusterId to) const = 0;
};

/// ChangeValidator backed by an objective function: a change is accepted
/// iff its delta is at most `-tolerance` (strictly improving).
class ObjectiveValidator final : public ChangeValidator {
 public:
  explicit ObjectiveValidator(const ObjectiveFunction* objective,
                              double tolerance = 1e-9)
      : objective_(objective), tolerance_(tolerance) {}

  bool MergeImproves(const ClusteringEngine& engine, ClusterId a,
                     ClusterId b) const override {
    return objective_->MergeDelta(engine, a, b) < -tolerance_;
  }
  bool SplitImproves(const ClusteringEngine& engine, ClusterId cluster,
                     const std::vector<ObjectId>& part) const override {
    return objective_->SplitDelta(engine, cluster, part) < -tolerance_;
  }
  bool MoveImproves(const ClusteringEngine& engine, ObjectId object,
                    ClusterId to) const override {
    return objective_->MoveDelta(engine, object, to) < -tolerance_;
  }

  const ObjectiveFunction& objective() const { return *objective_; }

 private:
  const ObjectiveFunction* objective_;
  double tolerance_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_OBJECTIVE_OBJECTIVE_H_
