#include "objective/kmeans.h"

#include <cmath>

#include "util/logging.h"

namespace dynamicc {

KMeansObjective::KMeansObjective(const Dataset* dataset, int target_k,
                                 double k_penalty)
    : dataset_(dataset), target_k_(target_k), k_penalty_(k_penalty) {
  DYNAMICC_CHECK(dataset != nullptr);
  DYNAMICC_CHECK_GT(target_k, 0);
  DYNAMICC_CHECK_GE(k_penalty, 0.0);
}

double KMeansObjective::SquaredDistance(const std::vector<double>& a,
                                        const std::vector<double>& b) {
  DYNAMICC_CHECK_EQ(a.size(), b.size());
  double sum = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    double diff = a[i] - b[i];
    sum += diff * diff;
  }
  return sum;
}

KMeansObjective::Stats KMeansObjective::StatsOf(
    const std::vector<ObjectId>& members) const {
  Stats stats;
  stats.size = static_cast<double>(members.size());
  if (members.empty()) return stats;
  size_t dims = dataset_->Get(members.front()).numeric.size();
  stats.centroid.assign(dims, 0.0);
  for (ObjectId id : members) {
    const auto& point = dataset_->Get(id).numeric;
    DYNAMICC_CHECK_EQ(point.size(), dims);
    for (size_t d = 0; d < dims; ++d) stats.centroid[d] += point[d];
  }
  for (size_t d = 0; d < dims; ++d) stats.centroid[d] /= stats.size;
  for (ObjectId id : members) {
    stats.sse += SquaredDistance(dataset_->Get(id).numeric, stats.centroid);
  }
  return stats;
}

const KMeansObjective::Stats& KMeansObjective::StatsFor(
    const ClusteringEngine& engine, ClusterId c) const {
  uint64_t epoch = engine.clustering().epoch();
  uint64_t version = engine.clustering().ClusterVersion(c);
  auto it = cache_.find(c);
  if (it != cache_.end() && it->second.epoch == epoch &&
      it->second.version == version) {
    return it->second;
  }
  const auto& members = engine.clustering().Members(c);
  Stats stats = StatsOf({members.begin(), members.end()});
  stats.epoch = epoch;
  stats.version = version;
  auto [slot, inserted] = cache_.insert_or_assign(c, std::move(stats));
  (void)inserted;
  return slot->second;
}

double KMeansObjective::Sse(const ClusteringEngine& engine) const {
  double total = 0.0;
  for (ClusterId c : engine.clustering().ClusterIds()) {
    total += StatsFor(engine, c).sse;
  }
  return total;
}

double KMeansObjective::Evaluate(const ClusteringEngine& engine) const {
  return Sse(engine) +
         Penalty(static_cast<double>(engine.clustering().num_clusters()));
}

double KMeansObjective::MergeDelta(const ClusteringEngine& engine, ClusterId a,
                                   ClusterId b) const {
  const Stats& sa = StatsFor(engine, a);
  const Stats& sb = StatsFor(engine, b);
  // SSE(A ∪ B) = SSE(A) + SSE(B) + |A||B|/(|A|+|B|) · ||μA − μB||².
  double sse_increase = (sa.size * sb.size) / (sa.size + sb.size) *
                        SquaredDistance(sa.centroid, sb.centroid);
  double k = static_cast<double>(engine.clustering().num_clusters());
  return sse_increase + Penalty(k - 1.0) - Penalty(k);
}

double KMeansObjective::SplitDelta(const ClusteringEngine& engine,
                                   ClusterId cluster,
                                   const std::vector<ObjectId>& part) const {
  const Stats& whole = StatsFor(engine, cluster);
  Stats part_stats = StatsOf(part);
  double rest_size = whole.size - part_stats.size;
  DYNAMICC_CHECK_GT(rest_size, 0.0);
  // μ_rest from the sum decomposition; the SSE decrease equals the
  // between-parts term of the within-cluster variance decomposition.
  std::vector<double> rest_centroid(whole.centroid.size());
  for (size_t d = 0; d < rest_centroid.size(); ++d) {
    rest_centroid[d] = (whole.centroid[d] * whole.size -
                        part_stats.centroid[d] * part_stats.size) /
                       rest_size;
  }
  double sse_decrease = (part_stats.size * rest_size / whole.size) *
                        SquaredDistance(part_stats.centroid, rest_centroid);
  double k = static_cast<double>(engine.clustering().num_clusters());
  return -sse_decrease + Penalty(k + 1.0) - Penalty(k);
}

double KMeansObjective::MoveDelta(const ClusteringEngine& engine,
                                  ObjectId object, ClusterId to) const {
  ClusterId from = engine.clustering().ClusterOf(object);
  DYNAMICC_CHECK_NE(from, kInvalidCluster);
  DYNAMICC_CHECK_NE(from, to);
  const auto& point = dataset_->Get(object).numeric;
  const Stats& sf = StatsFor(engine, from);
  const Stats& st = StatsFor(engine, to);
  double delta = 0.0;
  double k = static_cast<double>(engine.clustering().num_clusters());
  if (sf.size > 1.0) {
    // Removing x from C (size n): ΔSSE = −n/(n−1) · ||x − μC||².
    delta -= sf.size / (sf.size - 1.0) * SquaredDistance(point, sf.centroid);
  } else {
    // The source cluster disappears.
    delta += Penalty(k - 1.0) - Penalty(k);
  }
  // Adding x to T (size m): ΔSSE = m/(m+1) · ||x − μT||².
  delta += st.size / (st.size + 1.0) * SquaredDistance(point, st.centroid);
  return delta;
}

}  // namespace dynamicc
