#ifndef DYNAMICC_OBJECTIVE_KMEANS_H_
#define DYNAMICC_OBJECTIVE_KMEANS_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "data/dataset.h"
#include "objective/objective.h"

namespace dynamicc {

/// k-means objective: within-cluster sum of squared Euclidean distances to
/// the cluster mean (SSE), plus a large penalty per unit of deviation from
/// the target cluster count:
///
///   F = SSE + k_penalty * |#clusters - target_k|
///
/// The penalty encodes the fixed-k constraint in a form local search can
/// use: newly added singletons make merges strongly favourable until the
/// count returns to k, and gratuitous splits (which always lower raw SSE)
/// are rejected. Centroids and per-cluster SSEs are cached and invalidated
/// via Clustering::ClusterVersion.
class KMeansObjective final : public ObjectiveFunction {
 public:
  /// `dataset` must outlive the objective and contain numeric records.
  /// The default penalty must dwarf any achievable SSE change, otherwise
  /// k-restoring merges can be rejected on large-extent data.
  KMeansObjective(const Dataset* dataset, int target_k,
                  double k_penalty = 1e12);

  const char* Name() const override { return "kmeans-sse"; }

  double Evaluate(const ClusteringEngine& engine) const override;
  double MergeDelta(const ClusteringEngine& engine, ClusterId a,
                    ClusterId b) const override;
  double SplitDelta(const ClusteringEngine& engine, ClusterId cluster,
                    const std::vector<ObjectId>& part) const override;
  double MoveDelta(const ClusteringEngine& engine, ObjectId object,
                   ClusterId to) const override;

  int target_k() const { return target_k_; }

  /// Raw SSE without the cluster-count penalty (what Fig. 5d reports).
  double Sse(const ClusteringEngine& engine) const;

 private:
  struct Stats {
    uint64_t epoch = 0;
    uint64_t version = 0;
    double size = 0.0;
    std::vector<double> centroid;
    double sse = 0.0;
  };

  /// Cached stats of a live cluster (recomputed when the version moved).
  const Stats& StatsFor(const ClusteringEngine& engine, ClusterId c) const;

  /// Mean/SSE of an explicit member list.
  Stats StatsOf(const std::vector<ObjectId>& members) const;

  double Penalty(double num_clusters) const {
    double deviation = num_clusters - static_cast<double>(target_k_);
    return k_penalty_ * (deviation < 0 ? -deviation : deviation);
  }

  static double SquaredDistance(const std::vector<double>& a,
                                const std::vector<double>& b);

  const Dataset* dataset_;
  int target_k_;
  double k_penalty_;
  mutable std::unordered_map<ClusterId, Stats> cache_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_OBJECTIVE_KMEANS_H_
