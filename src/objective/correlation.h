#ifndef DYNAMICC_OBJECTIVE_CORRELATION_H_
#define DYNAMICC_OBJECTIVE_CORRELATION_H_

#include <vector>

#include "objective/objective.h"

namespace dynamicc {

/// Correlation-clustering disagreement cost (paper Eq. 1, in the form that
/// matches Example 4.1):
///
///   F(L) = Σ_{r,r' in same cluster} (1 − sim(r,r'))
///        + Σ_{r,r' in different clusters} sim(r,r')
///
/// Non-edges have similarity 0, so only the count of intra pairs and the
/// tracked intra/inter similarity sums are needed — every query is O(1)
/// (O(degree) for split/move deltas).
class CorrelationObjective final : public ObjectiveFunction {
 public:
  CorrelationObjective() = default;

  const char* Name() const override { return "correlation"; }

  double Evaluate(const ClusteringEngine& engine) const override;
  double MergeDelta(const ClusteringEngine& engine, ClusterId a,
                    ClusterId b) const override;
  double SplitDelta(const ClusteringEngine& engine, ClusterId cluster,
                    const std::vector<ObjectId>& part) const override;
  double MoveDelta(const ClusteringEngine& engine, ObjectId object,
                   ClusterId to) const override;
};

}  // namespace dynamicc

#endif  // DYNAMICC_OBJECTIVE_CORRELATION_H_
