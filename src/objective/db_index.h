#ifndef DYNAMICC_OBJECTIVE_DB_INDEX_H_
#define DYNAMICC_OBJECTIVE_DB_INDEX_H_

#include <unordered_map>
#include <vector>

#include "objective/objective.h"

namespace dynamicc {

/// Davies–Bouldin index [18] adapted to similarity space for record linkage,
/// following Gruenheid et al. [26] (see DESIGN.md interpretation note 3):
///
///   scatter    S_i  = 1 − avgIntraSim(C_i)   (singleton ⇒ singleton_scatter)
///   separation M_ij = max(1 − avgInterSim(C_i, C_j), separation_floor)
///   DB         = (1/k) Σ_i max_{j≠i} (S_i + S_j) / M_ij    (lower better)
///
/// The singleton scatter prior balances two degeneracies: at 0, shattering
/// everything into singletons scores a perfect 0; at 1, absorbing any stray
/// singleton into any weakly-similar cluster pays off. The default 0.5
/// treats a lone record as "unproven": merging near-duplicates (tiny M)
/// still wins decisively, while junk merges raise the host's scatter by
/// more than the removed singleton term was worth.
///
/// Deltas are computed exactly by materializing a lightweight "view" of the
/// per-cluster aggregates, applying the hypothetical change to the view, and
/// re-scoring — O(k + E) per call where E is the number of cluster pairs
/// with nonzero inter similarity.
class DbIndexObjective final : public ObjectiveFunction {
 public:
  explicit DbIndexObjective(double separation_floor = 0.05,
                            double singleton_scatter = 0.5);

  const char* Name() const override { return "db-index"; }

  double Evaluate(const ClusteringEngine& engine) const override;
  double MergeDelta(const ClusteringEngine& engine, ClusterId a,
                    ClusterId b) const override;
  double SplitDelta(const ClusteringEngine& engine, ClusterId cluster,
                    const std::vector<ObjectId>& part) const override;
  double MoveDelta(const ClusteringEngine& engine, ObjectId object,
                   ClusterId to) const override;

 private:
  struct View {
    double size = 0.0;
    double intra = 0.0;
    // Symmetric inter rows: inter[c] holds the pair sum to cluster c.
    std::unordered_map<ClusterId, double> inter;
  };
  using ViewMap = std::unordered_map<ClusterId, View>;

  ViewMap BuildViews(const ClusteringEngine& engine) const;
  double ScoreViews(const ViewMap& views) const;

  /// Merges view `b` into view `a` in place.
  static void ApplyMerge(ViewMap* views, ClusterId a, ClusterId b);

  /// Splits `part` out of `cluster` into a synthetic view `fresh_id`,
  /// using the graph to attribute pair sums.
  static void ApplySplit(ViewMap* views, const ClusteringEngine& engine,
                         ClusterId cluster, const std::vector<ObjectId>& part,
                         ClusterId fresh_id);

  double separation_floor_;
  double singleton_scatter_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_OBJECTIVE_DB_INDEX_H_
