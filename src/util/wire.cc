#include "util/wire.h"

#include <filesystem>
#include <fstream>
#include <sstream>

namespace dynamicc {

void WriteLengthPrefixed(std::ostream& os, const std::string& bytes) {
  os << bytes.size() << ' ';
  os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  os << '\n';
}

Status ReadLengthPrefixed(std::istream& is, size_t max_bytes,
                          std::string* out) {
  size_t size = 0;
  if (!(is >> size)) return Status::InvalidArgument("missing byte count");
  if (size > max_bytes) {
    return Status::InvalidArgument("byte count exceeds file size");
  }
  is.get();  // the single separator space
  out->resize(size);
  if (size > 0 && !is.read(&(*out)[0], static_cast<std::streamsize>(size))) {
    return Status::InvalidArgument("truncated byte string");
  }
  return Status::Ok();
}

Status ReadFileBytes(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary);
  if (!in.is_open()) return Status::NotFound("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  *out = buffer.str();
  return Status::Ok();
}

Status WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out.is_open()) return Status::IoError("cannot create " + path);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  out.flush();
  if (!out.good()) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string temp = path + ".tmp";
  Status status = WriteFileBytes(temp, bytes);
  if (!status.ok()) return status;
  std::error_code ec;
  std::filesystem::rename(temp, path, ec);
  if (ec) {
    const std::string reason = ec.message();
    std::error_code cleanup;  // must not clobber the rename failure
    std::filesystem::remove(temp, cleanup);
    return Status::IoError("cannot publish " + path + ": " + reason);
  }
  return Status::Ok();
}

std::string JoinPath(const std::string& dir, const std::string& name) {
  if (dir.empty()) return name;
  return dir.back() == '/' ? dir + name : dir + "/" + name;
}

}  // namespace dynamicc
