#ifndef DYNAMICC_UTIL_STRING_UTILS_H_
#define DYNAMICC_UTIL_STRING_UTILS_H_

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dynamicc {

/// Splits `text` on any of the characters in `delims`, dropping empty pieces.
std::vector<std::string> SplitTokens(std::string_view text,
                                     std::string_view delims = " \t,;");

/// ASCII lower-casing (datasets are generated ASCII-only).
std::string ToLowerAscii(std::string_view text);

/// Extracts the multiset of character trigrams of `text` (after padding with
/// leading/trailing '#', the convention used for trigram cosine similarity).
/// Returns trigram -> count.
std::unordered_map<std::string, int> TrigramCounts(std::string_view text);

/// Levenshtein edit distance between two strings.
int LevenshteinDistance(std::string_view a, std::string_view b);

/// Joins pieces with a separator.
std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep);

}  // namespace dynamicc

#endif  // DYNAMICC_UTIL_STRING_UTILS_H_
