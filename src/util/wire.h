#ifndef DYNAMICC_UTIL_WIRE_H_
#define DYNAMICC_UTIL_WIRE_H_

#include <iosfwd>
#include <string>

#include "util/status.h"

namespace dynamicc {

/// Wire conventions shared by every durable format in the repository
/// (service snapshots, replication delta logs): line-oriented text with
/// length-prefixed byte strings, whole-file read/write helpers, and
/// crash-atomic publication via write-to-temp + rename. Factored out of
/// service/snapshot.cc so the replication subsystem speaks the exact
/// same dialect instead of a drifting copy.

/// Writes `bytes` as "<size> <raw bytes>\n": arbitrary content (spaces,
/// newlines) survives the round trip.
void WriteLengthPrefixed(std::ostream& os, const std::string& bytes);

/// Reads one length-prefixed byte string written by WriteLengthPrefixed.
/// `max_bytes` bounds the declared size (callers pass the enclosing
/// file's size) so a corrupted count is rejected instead of honored with
/// a giant allocation.
Status ReadLengthPrefixed(std::istream& is, size_t max_bytes,
                          std::string* out);

/// Reads the whole file at `path` into `out` (binary, no translation).
Status ReadFileBytes(const std::string& path, std::string* out);

/// Writes `bytes` to `path`, truncating. Not atomic — callers that need
/// crash atomicity publish through WriteFileAtomic or a temp directory.
Status WriteFileBytes(const std::string& path, const std::string& bytes);

/// Crash-atomic file publication: writes to "<path>.tmp" and renames it
/// into place, so `path` either holds the previous content or all of
/// `bytes`, never a prefix. Readers must ignore "*.tmp" names.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// "<dir>/<name>" with the usual trailing-slash tolerance.
std::string JoinPath(const std::string& dir, const std::string& name);

}  // namespace dynamicc

#endif  // DYNAMICC_UTIL_WIRE_H_
