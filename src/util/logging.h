#ifndef DYNAMICC_UTIL_LOGGING_H_
#define DYNAMICC_UTIL_LOGGING_H_

#include <cstdint>
#include <iostream>
#include <sstream>
#include <string>

namespace dynamicc {

/// Severity levels for the lightweight logger.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

namespace internal_logging {

/// Thread-local shard/epoch context carried on every log line emitted
/// while set: "[INFO file:42 s3 e17] ...". The trace layer
/// (obs::ScopedSpan) publishes the span's shard/epoch here for the
/// span's lifetime, so logs from instrumented regions self-identify
/// without every call site threading the context through. shard < 0
/// means "service-wide" (no s tag); epoch 0 means "no epoch" (no e
/// tag).
struct LogTags {
  int64_t shard = -1;
  uint64_t epoch = 0;
};
LogTags GetThreadLogTags();
void SetThreadLogTags(LogTags tags);

/// Collects a log line via stream insertion and emits it on
/// destruction as one write of the fully formatted line — concurrent
/// threads' lines interleave whole, never character by character.
/// Fatal messages abort the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Global minimum level; messages below it are dropped (fatal always emits).
LogLevel GetMinLogLevel();
void SetMinLogLevel(LogLevel level);

/// A stream sink that swallows everything (used for disabled DCHECKs).
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal_logging

#define DYNAMICC_LOG(level)                                                  \
  ::dynamicc::internal_logging::LogMessage(::dynamicc::LogLevel::k##level,   \
                                           __FILE__, __LINE__)               \
      .stream()

/// CHECK aborts with a message when the condition is false. It is active in
/// all build types: clustering invariants guard algorithm correctness.
#define DYNAMICC_CHECK(cond)                                       \
  if (cond) {                                                      \
  } else /* NOLINT */                                              \
    DYNAMICC_LOG(Fatal) << "Check failed: " #cond " "

#define DYNAMICC_CHECK_OP(op, a, b)                                         \
  if ((a)op(b)) {                                                           \
  } else /* NOLINT */                                                       \
    DYNAMICC_LOG(Fatal) << "Check failed: " #a " " #op " " #b " (" << (a)   \
                        << " vs " << (b) << ") "

#define DYNAMICC_CHECK_EQ(a, b) DYNAMICC_CHECK_OP(==, a, b)
#define DYNAMICC_CHECK_NE(a, b) DYNAMICC_CHECK_OP(!=, a, b)
#define DYNAMICC_CHECK_LT(a, b) DYNAMICC_CHECK_OP(<, a, b)
#define DYNAMICC_CHECK_LE(a, b) DYNAMICC_CHECK_OP(<=, a, b)
#define DYNAMICC_CHECK_GT(a, b) DYNAMICC_CHECK_OP(>, a, b)
#define DYNAMICC_CHECK_GE(a, b) DYNAMICC_CHECK_OP(>=, a, b)

#ifdef NDEBUG
#define DYNAMICC_DCHECK(cond) \
  if (true) {                 \
  } else /* NOLINT */         \
    ::dynamicc::internal_logging::NullStream()
#else
#define DYNAMICC_DCHECK(cond) DYNAMICC_CHECK(cond)
#endif

}  // namespace dynamicc

#endif  // DYNAMICC_UTIL_LOGGING_H_
