#include "util/logging.h"

#include <cstdio>
#include <cstdlib>

namespace dynamicc {
namespace internal_logging {

namespace {
LogLevel g_min_level = LogLevel::kInfo;

thread_local LogTags t_log_tags;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "?";
}
}  // namespace

LogLevel GetMinLogLevel() { return g_min_level; }
void SetMinLogLevel(LogLevel level) { g_min_level = level; }

LogTags GetThreadLogTags() { return t_log_tags; }
void SetThreadLogTags(LogTags tags) { t_log_tags = tags; }

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LevelName(level) << " " << file << ":" << line;
  // Shard/epoch context from the trace layer, when a span is active on
  // this thread.
  if (t_log_tags.shard >= 0) stream_ << " s" << t_log_tags.shard;
  if (t_log_tags.epoch > 0) stream_ << " e" << t_log_tags.epoch;
  stream_ << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_min_level || level_ == LogLevel::kFatal) {
    // One fwrite of the whole formatted line: stderr is unbuffered but
    // POSIX only makes single write calls atomic — streaming the line
    // piecewise (the old std::cerr << ... << std::endl) let concurrent
    // workers' lines shear mid-token.
    std::string line = stream_.str();
    line.push_back('\n');
    std::fwrite(line.data(), 1, line.size(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal_logging
}  // namespace dynamicc
