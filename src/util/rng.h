#ifndef DYNAMICC_UTIL_RNG_H_
#define DYNAMICC_UTIL_RNG_H_

#include <cstdint>
#include <random>
#include <vector>

#include "util/logging.h"

namespace dynamicc {

/// Deterministic random number generator used throughout the library so that
/// every experiment is reproducible from a single seed. Wraps std::mt19937_64
/// with convenience draws.
class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  /// Uniform double in [0, 1).
  double Uniform() { return unit_(engine_); }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t Index(uint64_t n) {
    DYNAMICC_CHECK_GT(n, 0u);
    return std::uniform_int_distribution<uint64_t>(0, n - 1)(engine_);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t Int(int64_t lo, int64_t hi) {
    DYNAMICC_CHECK_LE(lo, hi);
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  /// Standard normal draw scaled to (mean, stddev).
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  /// Poisson draw with the given mean (>= 0 result).
  int Poisson(double mean) {
    return std::poisson_distribution<int>(mean)(engine_);
  }

  /// Bernoulli draw with success probability p.
  bool Chance(double p) { return Uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* values) {
    for (size_t i = values->size(); i > 1; --i) {
      size_t j = Index(i);
      std::swap((*values)[i - 1], (*values)[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleIndices(size_t n, size_t k) {
    DYNAMICC_CHECK_LE(k, n);
    std::vector<size_t> all(n);
    for (size_t i = 0; i < n; ++i) all[i] = i;
    for (size_t i = 0; i < k; ++i) {
      size_t j = i + Index(n - i);
      std::swap(all[i], all[j]);
    }
    all.resize(k);
    return all;
  }

  /// Forks an independent child generator; forking from the same parent
  /// state yields a reproducible stream per call site.
  Rng Fork() { return Rng(engine_()); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
  std::uniform_real_distribution<double> unit_{0.0, 1.0};
};

}  // namespace dynamicc

#endif  // DYNAMICC_UTIL_RNG_H_
