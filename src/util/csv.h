#ifndef DYNAMICC_UTIL_CSV_H_
#define DYNAMICC_UTIL_CSV_H_

#include <ostream>
#include <string>
#include <vector>

namespace dynamicc {

/// Accumulates rows and renders them either as CSV or as an aligned ASCII
/// table. The experiment harness uses this to print the paper's tables and
/// figure series.
class TableWriter {
 public:
  /// Creates a table with the given column headers.
  explicit TableWriter(std::vector<std::string> headers);

  /// Appends one row; the cell count must match the header count.
  void AddRow(std::vector<std::string> cells);

  /// Convenience: formats doubles with the given precision.
  static std::string Num(double value, int precision = 3);

  /// Renders as comma-separated values (one header row first).
  std::string ToCsv() const;

  /// Renders as an aligned, pipe-separated ASCII table.
  std::string ToAscii() const;

  /// Writes the ASCII rendering to `os`.
  void Print(std::ostream& os) const;

  size_t row_count() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_UTIL_CSV_H_
