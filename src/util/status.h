#ifndef DYNAMICC_UTIL_STATUS_H_
#define DYNAMICC_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace dynamicc {

/// Minimal error-reporting type for fallible operations (I/O, parsing).
/// Algorithmic invariants use DYNAMICC_CHECK instead; exceptions are not
/// used anywhere in the library.
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(Code::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(Code::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(Code::kIoError, std::move(message));
  }

  bool ok() const { return code_ == Code::kOk; }
  bool IsNotFound() const { return code_ == Code::kNotFound; }
  const std::string& message() const { return message_; }

  /// Human-readable rendering, e.g. "InvalidArgument: bad k".
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName()) + ": " + message_;
  }

 private:
  enum class Code { kOk, kInvalidArgument, kNotFound, kIoError };

  Status(Code code, std::string message)
      : code_(code), message_(std::move(message)) {}

  const char* CodeName() const {
    switch (code_) {
      case Code::kOk:
        return "OK";
      case Code::kInvalidArgument:
        return "InvalidArgument";
      case Code::kNotFound:
        return "NotFound";
      case Code::kIoError:
        return "IoError";
    }
    return "?";
  }

  Code code_ = Code::kOk;
  std::string message_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_UTIL_STATUS_H_
