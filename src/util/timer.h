#ifndef DYNAMICC_UTIL_TIMER_H_
#define DYNAMICC_UTIL_TIMER_H_

#include <chrono>

namespace dynamicc {

/// Monotonic wall-clock stopwatch for measuring re-clustering latency.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed seconds since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed milliseconds since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Stopwatch that reports its elapsed milliseconds to attached sinks
/// when it leaves scope — the one idiom behind every duration metric,
/// replacing the hand-rolled `Timer t; ... x = t.ElapsedMillis();`
/// pattern. Sinks compose:
///
///   {
///     ScopedTimer timer;
///     timer.Set(&stats.round_ms).Record(metrics ? metrics->round_ms
///                                               : nullptr);
///     ... timed work ...
///   }   // stats.round_ms written, histogram recorded
///
/// Record() takes anything with a `Record(double)` member (an
/// obs::Histogram, typically) without this header depending on it;
/// null targets are ignored, so instrumentation that is compiled in
/// but idle costs a pointer test.
class ScopedTimer {
 public:
  ScopedTimer() = default;
  ~ScopedTimer() {
    const double ms = timer_.ElapsedMillis();
    for (int i = 0; i < num_sinks_; ++i) sinks_[i].fn(sinks_[i].target, ms);
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// `*target = elapsed` on destruction.
  ScopedTimer& Set(double* target) {
    return Attach(target, [](void* p, double ms) {
      *static_cast<double*>(p) = ms;
    });
  }

  /// `*target += elapsed` on destruction.
  ScopedTimer& Add(double* target) {
    return Attach(target, [](void* p, double ms) {
      *static_cast<double*>(p) += ms;
    });
  }

  /// `sink->Record(elapsed)` on destruction; null sinks are ignored.
  template <typename Sink>
  ScopedTimer& Record(Sink* sink) {
    return Attach(sink, [](void* p, double ms) {
      static_cast<Sink*>(p)->Record(ms);
    });
  }

  /// Reads the stopwatch without detaching the sinks.
  double ElapsedMillis() const { return timer_.ElapsedMillis(); }

 private:
  static constexpr int kMaxSinks = 4;
  using SinkFn = void (*)(void*, double);

  ScopedTimer& Attach(void* target, SinkFn fn) {
    if (target != nullptr && num_sinks_ < kMaxSinks) {
      sinks_[num_sinks_].target = target;
      sinks_[num_sinks_].fn = fn;
      num_sinks_ += 1;
    }
    return *this;
  }

  struct Sink {
    void* target = nullptr;
    SinkFn fn = nullptr;
  };
  Timer timer_;
  Sink sinks_[kMaxSinks];
  int num_sinks_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_UTIL_TIMER_H_
