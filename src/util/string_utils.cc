#include "util/string_utils.h"

#include <algorithm>
#include <cctype>

namespace dynamicc {

std::vector<std::string> SplitTokens(std::string_view text,
                                     std::string_view delims) {
  std::vector<std::string> tokens;
  size_t start = 0;
  for (size_t i = 0; i <= text.size(); ++i) {
    bool at_delim =
        i == text.size() || delims.find(text[i]) != std::string_view::npos;
    if (at_delim) {
      if (i > start) tokens.emplace_back(text.substr(start, i - start));
      start = i + 1;
    }
  }
  return tokens;
}

std::string ToLowerAscii(std::string_view text) {
  std::string out(text);
  std::transform(out.begin(), out.end(), out.begin(), [](unsigned char c) {
    return static_cast<char>(std::tolower(c));
  });
  return out;
}

std::unordered_map<std::string, int> TrigramCounts(std::string_view text) {
  std::unordered_map<std::string, int> counts;
  std::string padded = "##" + std::string(text) + "##";
  if (padded.size() < 3) return counts;
  for (size_t i = 0; i + 3 <= padded.size(); ++i) {
    ++counts[padded.substr(i, 3)];
  }
  return counts;
}

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  // Single-row dynamic program; a is the shorter string.
  std::vector<int> row(a.size() + 1);
  for (size_t i = 0; i <= a.size(); ++i) row[i] = static_cast<int>(i);
  for (size_t j = 1; j <= b.size(); ++j) {
    int prev_diag = row[0];
    row[0] = static_cast<int>(j);
    for (size_t i = 1; i <= a.size(); ++i) {
      int insert_cost = row[i - 1] + 1;
      int delete_cost = row[i] + 1;
      int replace_cost = prev_diag + (a[i - 1] == b[j - 1] ? 0 : 1);
      prev_diag = row[i];
      row[i] = std::min({insert_cost, delete_cost, replace_cost});
    }
  }
  return row[a.size()];
}

std::string JoinStrings(const std::vector<std::string>& pieces,
                        std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < pieces.size(); ++i) {
    if (i > 0) out += sep;
    out += pieces[i];
  }
  return out;
}

}  // namespace dynamicc
