#include "util/csv.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "util/logging.h"

namespace dynamicc {

TableWriter::TableWriter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TableWriter::AddRow(std::vector<std::string> cells) {
  DYNAMICC_CHECK_EQ(cells.size(), headers_.size());
  rows_.push_back(std::move(cells));
}

std::string TableWriter::Num(double value, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << value;
  return os.str();
}

std::string TableWriter::ToCsv() const {
  std::ostringstream os;
  auto emit = [&os](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) os << ",";
      os << row[i];
    }
    os << "\n";
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

std::string TableWriter::ToAscii() const {
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (size_t i = 0; i < row.size(); ++i) {
      os << (i == 0 ? "| " : " | ") << std::left << std::setw(widths[i])
         << row[i];
    }
    os << " |\n";
  };
  emit(headers_);
  std::vector<std::string> rule(headers_.size());
  for (size_t i = 0; i < rule.size(); ++i) rule[i] = std::string(widths[i], '-');
  emit(rule);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

void TableWriter::Print(std::ostream& os) const { os << ToAscii(); }

}  // namespace dynamicc
