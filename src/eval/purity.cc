#include "eval/purity.h"

#include <algorithm>
#include <unordered_map>

#include "util/logging.h"

namespace dynamicc {

double Purity(const std::vector<std::vector<ObjectId>>& result,
              const std::vector<std::vector<ObjectId>>& truth) {
  std::unordered_map<ObjectId, size_t> truth_label;
  for (size_t i = 0; i < truth.size(); ++i) {
    for (ObjectId object : truth[i]) truth_label[object] = i;
  }
  double covered = 0.0, total = 0.0;
  for (const auto& cluster : result) {
    std::unordered_map<size_t, double> overlap;
    for (ObjectId object : cluster) {
      auto it = truth_label.find(object);
      DYNAMICC_CHECK(it != truth_label.end());
      overlap[it->second] += 1.0;
    }
    double best = 0.0;
    for (const auto& [label, count] : overlap) {
      (void)label;
      best = std::max(best, count);
    }
    covered += best;
    total += static_cast<double>(cluster.size());
  }
  return total == 0.0 ? 1.0 : covered / total;
}

double InversePurity(const std::vector<std::vector<ObjectId>>& result,
                     const std::vector<std::vector<ObjectId>>& truth) {
  return Purity(truth, result);
}

}  // namespace dynamicc
