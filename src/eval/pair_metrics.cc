#include "eval/pair_metrics.h"

#include <unordered_map>

#include "util/logging.h"

namespace dynamicc {

namespace {
double Choose2(double n) { return 0.5 * n * (n - 1.0); }
}  // namespace

PairMetrics ComparePairs(const std::vector<std::vector<ObjectId>>& result,
                         const std::vector<std::vector<ObjectId>>& truth) {
  // Contingency-table formulation: O(n) instead of O(n^2) pairs.
  std::unordered_map<ObjectId, size_t> truth_label;
  for (size_t i = 0; i < truth.size(); ++i) {
    for (ObjectId object : truth[i]) truth_label[object] = i;
  }

  double result_pairs = 0.0, truth_pairs = 0.0, agree_pairs = 0.0;
  for (const auto& cluster : truth) {
    truth_pairs += Choose2(static_cast<double>(cluster.size()));
  }
  for (const auto& cluster : result) {
    result_pairs += Choose2(static_cast<double>(cluster.size()));
    std::unordered_map<size_t, double> overlap;
    for (ObjectId object : cluster) {
      auto it = truth_label.find(object);
      DYNAMICC_CHECK(it != truth_label.end())
          << "object " << object << " missing from truth clustering";
      overlap[it->second] += 1.0;
    }
    for (const auto& [label, count] : overlap) {
      (void)label;
      agree_pairs += Choose2(count);
    }
  }

  PairMetrics metrics;
  metrics.true_positives = agree_pairs;
  metrics.false_positives = result_pairs - agree_pairs;
  metrics.false_negatives = truth_pairs - agree_pairs;
  return metrics;
}

double PairF1(const std::vector<std::vector<ObjectId>>& result,
              const std::vector<std::vector<ObjectId>>& truth) {
  return ComparePairs(result, truth).F1();
}

}  // namespace dynamicc
