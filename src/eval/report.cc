#include "eval/report.h"

#include <algorithm>
#include <sstream>

namespace dynamicc {

QualityReport EvaluateQuality(
    const std::vector<std::vector<ObjectId>>& result,
    const std::vector<std::vector<ObjectId>>& truth) {
  QualityReport report;
  PairMetrics pairs = ComparePairs(result, truth);
  report.f1 = pairs.F1();
  report.precision = pairs.Precision();
  report.recall = pairs.Recall();
  report.purity = Purity(result, truth);
  report.inverse_purity = InversePurity(result, truth);
  return report;
}

std::string DescribeClustering(const ClusteringEngine& engine) {
  const auto& clustering = engine.clustering();
  size_t largest = 0;
  for (ClusterId cluster : clustering.ClusterIds()) {
    largest = std::max(largest, clustering.ClusterSize(cluster));
  }
  std::ostringstream os;
  double mean =
      clustering.num_clusters() == 0
          ? 0.0
          : static_cast<double>(clustering.num_objects()) /
                static_cast<double>(clustering.num_clusters());
  os << clustering.num_clusters() << " clusters over "
     << clustering.num_objects() << " objects (mean size " << mean
     << ", largest " << largest << ")";
  return os.str();
}

}  // namespace dynamicc
