#ifndef DYNAMICC_EVAL_PURITY_H_
#define DYNAMICC_EVAL_PURITY_H_

#include <vector>

#include "data/types.h"

namespace dynamicc {

/// Purity [50]: each result cluster is matched to its best-overlapping
/// truth cluster; purity is the fraction of objects covered by those
/// matches. Inverse purity [9] swaps the roles (each truth cluster matched
/// to its best result cluster).
double Purity(const std::vector<std::vector<ObjectId>>& result,
              const std::vector<std::vector<ObjectId>>& truth);

double InversePurity(const std::vector<std::vector<ObjectId>>& result,
                     const std::vector<std::vector<ObjectId>>& truth);

}  // namespace dynamicc

#endif  // DYNAMICC_EVAL_PURITY_H_
