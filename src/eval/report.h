#ifndef DYNAMICC_EVAL_REPORT_H_
#define DYNAMICC_EVAL_REPORT_H_

#include <string>
#include <vector>

#include "cluster/engine.h"
#include "eval/pair_metrics.h"
#include "eval/purity.h"

namespace dynamicc {

/// Bundle of the paper's quality measures for one method on one snapshot
/// (Table 3's columns plus F1).
struct QualityReport {
  double f1 = 0.0;
  double precision = 0.0;
  double recall = 0.0;
  double purity = 0.0;
  double inverse_purity = 0.0;
};

/// Computes the full quality bundle of `result` against `truth`.
QualityReport EvaluateQuality(const std::vector<std::vector<ObjectId>>& result,
                              const std::vector<std::vector<ObjectId>>& truth);

/// Short human-readable summary of a clustering's shape (cluster count,
/// mean size, largest cluster) for logs and examples.
std::string DescribeClustering(const ClusteringEngine& engine);

}  // namespace dynamicc

#endif  // DYNAMICC_EVAL_REPORT_H_
