#ifndef DYNAMICC_EVAL_CONFUSION_H_
#define DYNAMICC_EVAL_CONFUSION_H_

#include <string>

#include "ml/model.h"
#include "ml/sample.h"

namespace dynamicc {

/// 2x2 confusion matrix of hard predictions (Fig. 3's heat map and the
/// accuracy/precision/recall arithmetic of §5.4).
struct ConfusionMatrix {
  size_t true_positives = 0;
  size_t true_negatives = 0;
  size_t false_positives = 0;
  size_t false_negatives = 0;

  size_t Total() const {
    return true_positives + true_negatives + false_positives +
           false_negatives;
  }
  double Accuracy() const;
  double Precision() const;
  double Recall() const;

  /// ASCII rendering of the heat-map counts (predicted x actual).
  std::string ToString() const;
};

/// Evaluates `model` on `samples` at decision threshold `theta`.
ConfusionMatrix EvaluateModel(const BinaryClassifier& model,
                              const SampleSet& samples, double theta);

}  // namespace dynamicc

#endif  // DYNAMICC_EVAL_CONFUSION_H_
