#include "eval/confusion.h"

#include <iomanip>
#include <sstream>

namespace dynamicc {

double ConfusionMatrix::Accuracy() const {
  size_t total = Total();
  if (total == 0) return 1.0;
  return static_cast<double>(true_positives + true_negatives) /
         static_cast<double>(total);
}

double ConfusionMatrix::Precision() const {
  size_t denom = true_positives + false_positives;
  if (denom == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

double ConfusionMatrix::Recall() const {
  size_t denom = true_positives + false_negatives;
  if (denom == 0) return 1.0;
  return static_cast<double>(true_positives) / static_cast<double>(denom);
}

std::string ConfusionMatrix::ToString() const {
  std::ostringstream os;
  os << "            predicted=0  predicted=1\n";
  os << "actual=0  " << std::setw(11) << true_negatives << "  "
     << std::setw(11) << false_positives << "\n";
  os << "actual=1  " << std::setw(11) << false_negatives << "  "
     << std::setw(11) << true_positives << "\n";
  return os.str();
}

ConfusionMatrix EvaluateModel(const BinaryClassifier& model,
                              const SampleSet& samples, double theta) {
  ConfusionMatrix matrix;
  for (const Sample& sample : samples) {
    int predicted = model.Predict(sample.features, theta);
    if (sample.label == 1) {
      if (predicted == 1) {
        ++matrix.true_positives;
      } else {
        ++matrix.false_negatives;
      }
    } else {
      if (predicted == 1) {
        ++matrix.false_positives;
      } else {
        ++matrix.true_negatives;
      }
    }
  }
  return matrix;
}

}  // namespace dynamicc
