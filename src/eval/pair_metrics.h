#ifndef DYNAMICC_EVAL_PAIR_METRICS_H_
#define DYNAMICC_EVAL_PAIR_METRICS_H_

#include <vector>

#include "data/types.h"

namespace dynamicc {

/// Pair-counting clustering comparison [7]: a pair of objects is a true
/// positive when both clusterings co-cluster it, etc. `result` is evaluated
/// against `truth` (the paper uses the batch algorithm's clustering as
/// truth, §7.1). Both inputs are partitions of the same object set,
/// as member lists (Clustering::CanonicalClusters output).
struct PairMetrics {
  double true_positives = 0.0;
  double false_positives = 0.0;
  double false_negatives = 0.0;

  double Precision() const {
    double denom = true_positives + false_positives;
    return denom == 0.0 ? 1.0 : true_positives / denom;
  }
  double Recall() const {
    double denom = true_positives + false_negatives;
    return denom == 0.0 ? 1.0 : true_positives / denom;
  }
  double F1() const {
    double p = Precision(), r = Recall();
    return p + r == 0.0 ? 0.0 : 2.0 * p * r / (p + r);
  }
};

PairMetrics ComparePairs(const std::vector<std::vector<ObjectId>>& result,
                         const std::vector<std::vector<ObjectId>>& truth);

/// Convenience: pair-counting F1 of `result` against `truth`.
double PairF1(const std::vector<std::vector<ObjectId>>& result,
              const std::vector<std::vector<ObjectId>>& truth);

}  // namespace dynamicc

#endif  // DYNAMICC_EVAL_PAIR_METRICS_H_
