// Block compression for bulk payloads (delta files, base snapshot
// files) shipped over the replication stream.
//
// Encoded block layout:
//
//     u8 codec || varint raw_size || u64le checksum(raw) || body
//
// Codecs:
//   kRaw — body is the raw bytes verbatim. Always supported; the
//          fallback when negotiation yields nothing better.
//   kLzb — "LZ block": a greedy LZ77 with a 4-byte hash-table match
//          finder, LZ4-style token stream (literal/match length
//          nibbles with extension bytes, 2-byte little-endian
//          offsets). Records dominate delta bytes and repeat heavily
//          (entity prefixes, token vocab), which is exactly what a
//          short-offset LZ likes.
//
// The checksum is FNV-1a over the *raw* bytes (same function the
// snapshot layer uses), so a decode that passes returns bit-exact
// input — follower replay stays byte-identical by construction.
// DecodeBlock is safe on adversarial input: every read is bounds-
// checked and malformed blocks return false, never crash.
//
// Streams negotiate a codec at Hello time via a supported-codec
// bitmask (bit i set == codec i supported); see rpc.h.
#ifndef DYNAMICC_NET_CODEC_H_
#define DYNAMICC_NET_CODEC_H_

#include <cstdint>
#include <string>

namespace dynamicc {
namespace net {

enum class Codec : uint8_t {
  kRaw = 0,
  kLzb = 1,
};

// Bitmask of every codec this build supports.
constexpr uint64_t kSupportedCodecs =
    (1u << static_cast<int>(Codec::kRaw)) |
    (1u << static_cast<int>(Codec::kLzb));

// Picks the best codec both peers support (highest common bit among
// known codecs; kRaw if the masks only share bit 0).
Codec NegotiateCodec(uint64_t ours, uint64_t theirs);

// Appends an encoded block to |out|. If |codec| is kLzb but the
// compressed body would not be smaller than the raw bytes, the block
// is stored as kRaw instead (the block header records which).
void EncodeBlock(Codec codec, const std::string& raw, std::string* out);

// Decodes one block (the entire |block| string). Returns false on any
// malformed input: bad codec byte, truncated header or body, declared
// size over |max_raw_bytes|, corrupt LZ token stream, or checksum
// mismatch.
bool DecodeBlock(const std::string& block, uint64_t max_raw_bytes,
                 std::string* raw);

// Raw LZ primitives, exposed for tests. CompressLzb output is only
// meaningful to DecompressLzb (no header/checksum at this level).
void CompressLzb(const std::string& raw, std::string* out);
bool DecompressLzb(const char* data, size_t size, size_t raw_size,
                   std::string* out);

}  // namespace net
}  // namespace dynamicc

#endif  // DYNAMICC_NET_CODEC_H_
