#include "net/wire_format.h"

#include <cstring>

namespace dynamicc {
namespace net {

void PutVarint(std::string* out, uint64_t value) {
  while (value >= 0x80) {
    out->push_back(static_cast<char>((value & 0x7f) | 0x80));
    value >>= 7;
  }
  out->push_back(static_cast<char>(value));
}

int GetVarint(const char* data, size_t size, uint64_t* value) {
  uint64_t result = 0;
  for (size_t i = 0; i < size && i < 10; ++i) {
    uint8_t byte = static_cast<uint8_t>(data[i]);
    if (i == 9 && byte > 1) return -1;  // would overflow 64 bits
    result |= static_cast<uint64_t>(byte & 0x7f) << (7 * i);
    if ((byte & 0x80) == 0) {
      *value = result;
      return static_cast<int>(i + 1);
    }
  }
  return size >= 10 ? -1 : 0;
}

void BinaryWriter::PutDouble(double v) {
  char buf[sizeof(double)];
  std::memcpy(buf, &v, sizeof(double));
  out_->append(buf, sizeof(double));
}

void BinaryWriter::PutBytes(const std::string& bytes) {
  PutBytes(bytes.data(), bytes.size());
}

void BinaryWriter::PutBytes(const char* data, size_t size) {
  PutVarint(out_, size);
  out_->append(data, size);
}

bool BinaryReader::GetU8(uint8_t* v) {
  if (remaining() < 1) return false;
  *v = static_cast<uint8_t>(data_[pos_++]);
  return true;
}

bool BinaryReader::GetVar(uint64_t* v) {
  int n = GetVarint(data_ + pos_, remaining(), v);
  if (n <= 0) return false;
  pos_ += static_cast<size_t>(n);
  return true;
}

bool BinaryReader::GetDouble(double* v) {
  if (remaining() < sizeof(double)) return false;
  std::memcpy(v, data_ + pos_, sizeof(double));
  pos_ += sizeof(double);
  return true;
}

bool BinaryReader::GetBytes(std::string* out) {
  uint64_t size = 0;
  if (!GetVar(&size)) return false;
  if (size > remaining()) return false;
  out->assign(data_ + pos_, static_cast<size_t>(size));
  pos_ += static_cast<size_t>(size);
  return true;
}

void AppendFrame(std::string* out, const std::string& payload) {
  PutVarint(out, payload.size());
  out->append(payload);
}

int TryParseFrame(const std::string& buffer, uint64_t max_frame_bytes,
                  std::string* payload, size_t* consumed) {
  uint64_t size = 0;
  int header = GetVarint(buffer.data(), buffer.size(), &size);
  if (header < 0) return -1;
  if (header == 0) return 0;
  if (size > max_frame_bytes) return -1;
  size_t total = static_cast<size_t>(header) + static_cast<size_t>(size);
  if (buffer.size() < total) return 0;
  payload->assign(buffer.data() + header, static_cast<size_t>(size));
  *consumed = total;
  return 1;
}

}  // namespace net
}  // namespace dynamicc
