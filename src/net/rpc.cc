#include "net/rpc.h"

#include <sstream>

#include "data/record.h"

namespace dynamicc {
namespace net {
namespace {

// Staleness travels as `value + 1` with 0 meaning unbounded, so
// UINT64_MAX (ReadRouter::kUnbounded) survives the varint trip.
uint64_t PackStaleness(uint64_t s) { return s == UINT64_MAX ? 0 : s + 1; }
uint64_t UnpackStaleness(uint64_t v) { return v == 0 ? UINT64_MAX : v - 1; }

void Begin(MsgType type, std::string* out) {
  out->push_back(static_cast<char>(type));
}

bool BeginDecode(const std::string& payload, MsgType expect,
                 BinaryReader* r) {
  uint8_t type;
  if (!r->GetU8(&type)) return false;
  (void)payload;
  return type == static_cast<uint8_t>(expect);
}

void PutInfo(BinaryWriter* w, const ResultInfoWire& info) {
  w->PutVar(info.epoch);
  w->PutVar(info.staleness);
  w->PutU8(info.served ? 1 : 0);
}

bool GetInfo(BinaryReader* r, ResultInfoWire* info) {
  uint8_t served;
  if (!r->GetVar(&info->epoch)) return false;
  if (!r->GetVar(&info->staleness)) return false;
  if (!r->GetU8(&served)) return false;
  info->served = served != 0;
  return true;
}

void PutIdList(BinaryWriter* w, const std::vector<uint64_t>& ids) {
  w->PutVar(ids.size());
  for (uint64_t id : ids) w->PutVar(id);
}

bool GetIdList(BinaryReader* r, std::vector<uint64_t>* ids) {
  uint64_t n;
  if (!r->GetVar(&n)) return false;
  // Each id costs at least one byte on the wire; a count beyond the
  // remaining bytes is corruption, not a big list.
  if (n > r->remaining()) return false;
  ids->clear();
  ids->reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t id;
    if (!r->GetVar(&id)) return false;
    ids->push_back(id);
  }
  return true;
}

// The delta-log text dialect for operation batches: `ops N`, then per
// op `<kind> <target>` + WriteRecordWire.
void PutOps(BinaryWriter* w, const OperationBatch& ops) {
  std::ostringstream os;
  os << "ops " << ops.size() << "\n";
  for (const DataOperation& op : ops) {
    os << static_cast<int>(op.kind) << " " << op.target << "\n";
    WriteRecordWire(os, op.record);
  }
  w->PutBytes(os.str());
}

bool GetOps(BinaryReader* r, OperationBatch* ops) {
  std::string text;
  if (!r->GetBytes(&text)) return false;
  std::istringstream is(text);
  std::string tag;
  size_t n = 0;
  if (!(is >> tag >> n) || tag != "ops") return false;
  if (n > text.size()) return false;  // each op costs > 1 byte
  ops->clear();
  ops->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    DataOperation op;
    int kind = 0;
    long long target = 0;
    if (!(is >> kind >> target) || kind < 0 || kind > 2) return false;
    op.kind = static_cast<DataOperation::Kind>(kind);
    op.target = static_cast<ObjectId>(target);
    if (!ReadRecordWire(is, text.size(), &op.record).ok()) return false;
    ops->push_back(std::move(op));
  }
  return true;
}

}  // namespace

bool PeekType(const std::string& payload, MsgType* type) {
  if (payload.empty()) return false;
  *type = static_cast<MsgType>(static_cast<uint8_t>(payload[0]));
  return true;
}

namespace {

// Indexed by type byte; keep in sync with MsgType.
constexpr const char* kMsgTypeNames[] = {
    "Error",          "Hello",         "HelloOk",
    "Ingest",         "IngestOk",      "ClusterOf",
    "ClusterOfOk",    "KNearest",      "KNearestOk",
    "Stats",          "StatsOk",       "ReplState",
    "ReplStateOk",    "FetchDelta",    "FetchDeltaOk",
    "FetchBaseManifest", "FetchBaseManifestOk", "FetchBaseFile",
    "FetchBaseFileOk", "Shutdown",     "ShutdownOk",
    "Traced",         "MetricsScrape", "MetricsScrapeOk",
    "TraceDump",      "TraceDumpOk",   "Health",
    "HealthOk",
};
constexpr const char* kRpcSpanNames[] = {
    "rpc.Error",          "rpc.Hello",         "rpc.HelloOk",
    "rpc.Ingest",         "rpc.IngestOk",      "rpc.ClusterOf",
    "rpc.ClusterOfOk",    "rpc.KNearest",      "rpc.KNearestOk",
    "rpc.Stats",          "rpc.StatsOk",       "rpc.ReplState",
    "rpc.ReplStateOk",    "rpc.FetchDelta",    "rpc.FetchDeltaOk",
    "rpc.FetchBaseManifest", "rpc.FetchBaseManifestOk", "rpc.FetchBaseFile",
    "rpc.FetchBaseFileOk", "rpc.Shutdown",     "rpc.ShutdownOk",
    "rpc.Traced",         "rpc.MetricsScrape", "rpc.MetricsScrapeOk",
    "rpc.TraceDump",      "rpc.TraceDumpOk",   "rpc.Health",
    "rpc.HealthOk",
};
constexpr size_t kNumMsgTypes =
    sizeof(kMsgTypeNames) / sizeof(kMsgTypeNames[0]);
static_assert(kNumMsgTypes ==
                  static_cast<size_t>(MsgType::kHealthOk) + 1,
              "name table out of sync with MsgType");

}  // namespace

const char* MsgTypeName(MsgType type) {
  const size_t i = static_cast<uint8_t>(type);
  return i < kNumMsgTypes ? kMsgTypeNames[i] : "Unknown";
}

const char* RpcSpanName(MsgType type) {
  const size_t i = static_cast<uint8_t>(type);
  return i < kNumMsgTypes ? kRpcSpanNames[i] : "rpc.Unknown";
}

void EncodeError(const Status& status, std::string* out) {
  Begin(MsgType::kError, out);
  BinaryWriter w(out);
  w.PutBytes(status.ToString());
}

Status DecodeError(const std::string& payload) {
  BinaryReader r(payload);
  std::string message;
  if (!BeginDecode(payload, MsgType::kError, &r) || !r.GetBytes(&message)) {
    return Status::IoError("malformed error response");
  }
  return Status::IoError("remote: " + message);
}

void Encode(const HelloRequest& msg, std::string* out) {
  Begin(MsgType::kHello, out);
  BinaryWriter w(out);
  w.PutVar(msg.protocol_version);
  w.PutVar(msg.codec_mask);
  // Optional trailing field: omitted when zero so a pre-feature server
  // (which requires done() after codec_mask) still accepts the Hello.
  if (msg.feature_mask != 0) w.PutVar(msg.feature_mask);
}

bool Decode(const std::string& payload, HelloRequest* msg) {
  BinaryReader r(payload);
  if (!BeginDecode(payload, MsgType::kHello, &r) ||
      !r.GetVar(&msg->protocol_version) || !r.GetVar(&msg->codec_mask)) {
    return false;
  }
  msg->feature_mask = 0;
  if (!r.done() && !r.GetVar(&msg->feature_mask)) return false;
  return r.done();
}

void Encode(const HelloResponse& msg, std::string* out) {
  Begin(MsgType::kHelloOk, out);
  BinaryWriter w(out);
  w.PutVar(msg.protocol_version);
  w.PutU8(static_cast<uint8_t>(msg.codec));
  if (msg.feature_mask != 0) w.PutVar(msg.feature_mask);
}

bool Decode(const std::string& payload, HelloResponse* msg) {
  BinaryReader r(payload);
  uint8_t codec;
  if (!BeginDecode(payload, MsgType::kHelloOk, &r) ||
      !r.GetVar(&msg->protocol_version) || !r.GetU8(&codec)) {
    return false;
  }
  msg->feature_mask = 0;
  if (!r.done() && !r.GetVar(&msg->feature_mask)) return false;
  if (!r.done()) return false;
  if (codec > static_cast<uint8_t>(Codec::kLzb)) return false;
  msg->codec = static_cast<Codec>(codec);
  return true;
}

void Encode(const IngestRequest& msg, std::string* out) {
  Begin(MsgType::kIngest, out);
  BinaryWriter w(out);
  PutOps(&w, msg.ops);
}

bool Decode(const std::string& payload, IngestRequest* msg) {
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kIngest, &r) && GetOps(&r, &msg->ops) &&
         r.done();
}

void Encode(const IngestResponse& msg, std::string* out) {
  Begin(MsgType::kIngestOk, out);
  BinaryWriter w(out);
  w.PutU8(msg.accepted ? 1 : 0);
  PutIdList(&w, msg.ids);
}

bool Decode(const std::string& payload, IngestResponse* msg) {
  BinaryReader r(payload);
  uint8_t accepted;
  if (!BeginDecode(payload, MsgType::kIngestOk, &r) || !r.GetU8(&accepted) ||
      !GetIdList(&r, &msg->ids) || !r.done()) {
    return false;
  }
  msg->accepted = accepted != 0;
  return true;
}

void Encode(const ClusterOfRequest& msg, std::string* out) {
  Begin(MsgType::kClusterOf, out);
  BinaryWriter w(out);
  w.PutVar(msg.global_id);
  w.PutVar(PackStaleness(msg.max_staleness));
}

bool Decode(const std::string& payload, ClusterOfRequest* msg) {
  BinaryReader r(payload);
  uint64_t staleness;
  if (!BeginDecode(payload, MsgType::kClusterOf, &r) ||
      !r.GetVar(&msg->global_id) || !r.GetVar(&staleness) || !r.done()) {
    return false;
  }
  msg->max_staleness = UnpackStaleness(staleness);
  return true;
}

void Encode(const ClusterOfResponse& msg, std::string* out) {
  Begin(MsgType::kClusterOfOk, out);
  BinaryWriter w(out);
  PutInfo(&w, msg.info);
  PutIdList(&w, msg.members);
  w.PutDouble(msg.avg_intra);
}

bool Decode(const std::string& payload, ClusterOfResponse* msg) {
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kClusterOfOk, &r) &&
         GetInfo(&r, &msg->info) && GetIdList(&r, &msg->members) &&
         r.GetDouble(&msg->avg_intra) && r.done();
}

void Encode(const KNearestRequest& msg, std::string* out) {
  Begin(MsgType::kKNearest, out);
  BinaryWriter w(out);
  w.PutVar(msg.k);
  w.PutVar(PackStaleness(msg.max_staleness));
  std::ostringstream os;
  WriteRecordWire(os, msg.probe);
  w.PutBytes(os.str());
}

bool Decode(const std::string& payload, KNearestRequest* msg) {
  BinaryReader r(payload);
  uint64_t staleness;
  std::string record_bytes;
  if (!BeginDecode(payload, MsgType::kKNearest, &r) || !r.GetVar(&msg->k) ||
      !r.GetVar(&staleness) || !r.GetBytes(&record_bytes) || !r.done()) {
    return false;
  }
  msg->max_staleness = UnpackStaleness(staleness);
  std::istringstream is(record_bytes);
  return ReadRecordWire(is, record_bytes.size(), &msg->probe).ok();
}

void Encode(const KNearestResponse& msg, std::string* out) {
  Begin(MsgType::kKNearestOk, out);
  BinaryWriter w(out);
  PutInfo(&w, msg.info);
  w.PutVar(msg.hits.size());
  for (const KNearestResponse::Hit& hit : msg.hits) {
    w.PutDouble(hit.similarity);
    w.PutDouble(hit.avg_intra);
    PutIdList(&w, hit.members);
  }
}

bool Decode(const std::string& payload, KNearestResponse* msg) {
  BinaryReader r(payload);
  uint64_t n;
  if (!BeginDecode(payload, MsgType::kKNearestOk, &r) ||
      !GetInfo(&r, &msg->info) || !r.GetVar(&n)) {
    return false;
  }
  if (n > r.remaining()) return false;
  msg->hits.clear();
  msg->hits.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    KNearestResponse::Hit hit;
    if (!r.GetDouble(&hit.similarity) || !r.GetDouble(&hit.avg_intra) ||
        !GetIdList(&r, &hit.members)) {
      return false;
    }
    msg->hits.push_back(std::move(hit));
  }
  return r.done();
}

void Encode(const StatsRequest& msg, std::string* out) {
  Begin(MsgType::kStats, out);
  BinaryWriter w(out);
  w.PutVar(PackStaleness(msg.max_staleness));
}

bool Decode(const std::string& payload, StatsRequest* msg) {
  BinaryReader r(payload);
  uint64_t staleness;
  if (!BeginDecode(payload, MsgType::kStats, &r) || !r.GetVar(&staleness) ||
      !r.done()) {
    return false;
  }
  msg->max_staleness = UnpackStaleness(staleness);
  return true;
}

void Encode(const StatsResponse& msg, std::string* out) {
  Begin(MsgType::kStatsOk, out);
  BinaryWriter w(out);
  PutInfo(&w, msg.info);
  w.PutVar(msg.objects);
  w.PutVar(msg.clusters);
  w.PutDouble(msg.total_intra_sum);
}

bool Decode(const std::string& payload, StatsResponse* msg) {
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kStatsOk, &r) &&
         GetInfo(&r, &msg->info) && r.GetVar(&msg->objects) &&
         r.GetVar(&msg->clusters) && r.GetDouble(&msg->total_intra_sum) &&
         r.done();
}

void Encode(const ReplStateRequest& msg, std::string* out) {
  (void)msg;
  Begin(MsgType::kReplState, out);
}

bool Decode(const std::string& payload, ReplStateRequest* msg) {
  (void)msg;
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kReplState, &r) && r.done();
}

void Encode(const ReplStateResponse& msg, std::string* out) {
  Begin(MsgType::kReplStateOk, out);
  BinaryWriter w(out);
  w.PutU8(msg.stream_done ? 1 : 0);
  PutIdList(&w, msg.base_epochs);
  PutIdList(&w, msg.delta_epochs);
}

bool Decode(const std::string& payload, ReplStateResponse* msg) {
  BinaryReader r(payload);
  uint8_t done;
  if (!BeginDecode(payload, MsgType::kReplStateOk, &r) || !r.GetU8(&done) ||
      !GetIdList(&r, &msg->base_epochs) ||
      !GetIdList(&r, &msg->delta_epochs) || !r.done()) {
    return false;
  }
  msg->stream_done = done != 0;
  return true;
}

void Encode(const FetchDeltaRequest& msg, std::string* out) {
  Begin(MsgType::kFetchDelta, out);
  BinaryWriter w(out);
  w.PutVar(msg.epoch);
}

bool Decode(const std::string& payload, FetchDeltaRequest* msg) {
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kFetchDelta, &r) &&
         r.GetVar(&msg->epoch) && r.done();
}

void Encode(const FetchBaseManifestRequest& msg, std::string* out) {
  Begin(MsgType::kFetchBaseManifest, out);
  BinaryWriter w(out);
  w.PutVar(msg.epoch);
}

bool Decode(const std::string& payload, FetchBaseManifestRequest* msg) {
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kFetchBaseManifest, &r) &&
         r.GetVar(&msg->epoch) && r.done();
}

void Encode(const FetchBaseManifestResponse& msg, std::string* out) {
  Begin(MsgType::kFetchBaseManifestOk, out);
  BinaryWriter w(out);
  w.PutVar(msg.files.size());
  for (const std::string& name : msg.files) w.PutBytes(name);
}

bool Decode(const std::string& payload, FetchBaseManifestResponse* msg) {
  BinaryReader r(payload);
  uint64_t n;
  if (!BeginDecode(payload, MsgType::kFetchBaseManifestOk, &r) ||
      !r.GetVar(&n)) {
    return false;
  }
  if (n > r.remaining()) return false;
  msg->files.clear();
  msg->files.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!r.GetBytes(&name)) return false;
    msg->files.push_back(std::move(name));
  }
  return r.done();
}

void Encode(const FetchBaseFileRequest& msg, std::string* out) {
  Begin(MsgType::kFetchBaseFile, out);
  BinaryWriter w(out);
  w.PutVar(msg.epoch);
  w.PutBytes(msg.name);
}

bool Decode(const std::string& payload, FetchBaseFileRequest* msg) {
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kFetchBaseFile, &r) &&
         r.GetVar(&msg->epoch) && r.GetBytes(&msg->name) && r.done();
}

void Encode(MsgType type, const BlockResponse& msg, std::string* out) {
  Begin(type, out);
  BinaryWriter w(out);
  w.PutBytes(msg.block);
}

bool Decode(const std::string& payload, BlockResponse* msg) {
  BinaryReader r(payload);
  uint8_t type;
  if (!r.GetU8(&type)) return false;
  if (type != static_cast<uint8_t>(MsgType::kFetchDeltaOk) &&
      type != static_cast<uint8_t>(MsgType::kFetchBaseFileOk)) {
    return false;
  }
  return r.GetBytes(&msg->block) && r.done();
}

void EncodeTraced(const TraceContextWire& ctx, const std::string& inner,
                  std::string* out) {
  Begin(MsgType::kTraced, out);
  BinaryWriter w(out);
  w.PutVar(ctx.trace_id);
  w.PutVar(ctx.parent_span_id);
  w.PutU8(ctx.sampled ? 1 : 0);
  out->append(inner);
}

bool DecodeTraced(const std::string& payload, TraceContextWire* ctx,
                  std::string* inner) {
  BinaryReader r(payload);
  uint8_t flags;
  if (!BeginDecode(payload, MsgType::kTraced, &r) ||
      !r.GetVar(&ctx->trace_id) || !r.GetVar(&ctx->parent_span_id) ||
      !r.GetU8(&flags)) {
    return false;
  }
  ctx->sampled = (flags & 1) != 0;
  // The rest of the payload is a complete inner request; an empty one
  // is malformed (there is nothing to dispatch).
  if (r.remaining() == 0) return false;
  inner->assign(r.cursor(), r.remaining());
  return true;
}

void Encode(const MetricsScrapeRequest& msg, std::string* out) {
  (void)msg;
  Begin(MsgType::kMetricsScrape, out);
}

bool Decode(const std::string& payload, MetricsScrapeRequest* msg) {
  (void)msg;
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kMetricsScrape, &r) && r.done();
}

void Encode(const MetricsScrapeResponse& msg, std::string* out) {
  Begin(MsgType::kMetricsScrapeOk, out);
  BinaryWriter w(out);
  w.PutBytes(msg.text);
}

bool Decode(const std::string& payload, MetricsScrapeResponse* msg) {
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kMetricsScrapeOk, &r) &&
         r.GetBytes(&msg->text) && r.done();
}

void Encode(const TraceDumpRequest& msg, std::string* out) {
  (void)msg;
  Begin(MsgType::kTraceDump, out);
}

bool Decode(const std::string& payload, TraceDumpRequest* msg) {
  (void)msg;
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kTraceDump, &r) && r.done();
}

void Encode(const TraceDumpResponse& msg, std::string* out) {
  Begin(MsgType::kTraceDumpOk, out);
  BinaryWriter w(out);
  w.PutBytes(msg.json);
}

bool Decode(const std::string& payload, TraceDumpResponse* msg) {
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kTraceDumpOk, &r) &&
         r.GetBytes(&msg->json) && r.done();
}

void Encode(const HealthRequest& msg, std::string* out) {
  (void)msg;
  Begin(MsgType::kHealth, out);
}

bool Decode(const std::string& payload, HealthRequest* msg) {
  (void)msg;
  BinaryReader r(payload);
  return BeginDecode(payload, MsgType::kHealth, &r) && r.done();
}

void Encode(const HealthResponse& msg, std::string* out) {
  Begin(MsgType::kHealthOk, out);
  BinaryWriter w(out);
  w.PutU8(msg.ok ? 1 : 0);
  w.PutVar(msg.alerts_active);
  w.PutVar(msg.alerts.size());
  for (const std::string& name : msg.alerts) w.PutBytes(name);
}

bool Decode(const std::string& payload, HealthResponse* msg) {
  BinaryReader r(payload);
  uint8_t ok;
  uint64_t n;
  if (!BeginDecode(payload, MsgType::kHealthOk, &r) || !r.GetU8(&ok) ||
      !r.GetVar(&msg->alerts_active) || !r.GetVar(&n)) {
    return false;
  }
  if (n > r.remaining()) return false;
  msg->ok = ok != 0;
  msg->alerts.clear();
  msg->alerts.reserve(static_cast<size_t>(n));
  for (uint64_t i = 0; i < n; ++i) {
    std::string name;
    if (!r.GetBytes(&name)) return false;
    msg->alerts.push_back(std::move(name));
  }
  return r.done();
}

void EncodeShutdown(std::string* out) { Begin(MsgType::kShutdown, out); }

void EncodeShutdownOk(std::string* out) { Begin(MsgType::kShutdownOk, out); }

}  // namespace net
}  // namespace dynamicc
