// RPC catalogue for the networked serving layer.
//
// Every frame payload is `u8 type || body`. Requests and responses are
// distinct types; any request may instead be answered with kError
// (`u8 code || bytes message`). Integers are varints, doubles are raw
// IEEE-754 little-endian bytes (bit-exact across the fleet), byte
// strings are varint-length-prefixed.
//
// Operation batches ride in the same text dialect the delta log uses
// (`ops N`, then `<kind> <target>` + WriteRecordWire per op) so the
// ingest path and the replication stream share one record codec.
//
// Staleness bounds are encoded as `staleness + 1` with 0 meaning
// unbounded (ReadRouter::kUnbounded is UINT64_MAX and must survive the
// trip).
//
// See docs/networking.md for the full wire-format tables.
#ifndef DYNAMICC_NET_RPC_H_
#define DYNAMICC_NET_RPC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "data/operations.h"
#include "net/codec.h"
#include "net/wire_format.h"
#include "service/query_api.h"
#include "util/status.h"

namespace dynamicc {
namespace net {

constexpr uint64_t kProtocolVersion = 1;

enum class MsgType : uint8_t {
  kError = 0,
  kHello = 1,
  kHelloOk = 2,
  kIngest = 3,
  kIngestOk = 4,
  kClusterOf = 5,
  kClusterOfOk = 6,
  kKNearest = 7,
  kKNearestOk = 8,
  kStats = 9,
  kStatsOk = 10,
  kReplState = 11,
  kReplStateOk = 12,
  kFetchDelta = 13,
  kFetchDeltaOk = 14,
  kFetchBaseManifest = 15,
  kFetchBaseManifestOk = 16,
  kFetchBaseFile = 17,
  kFetchBaseFileOk = 18,
  kShutdown = 19,
  kShutdownOk = 20,
  // Trace-context envelope: wraps any request payload with distributed
  // trace identity (trace id, parent span id, sampling flag). Sent only
  // after the server advertised kFeatureTraceContext in HelloOk.
  kTraced = 21,
  // Fleet introspection: scrape metrics (Prometheus text), dump the
  // trace rings (Chrome-trace JSON), and an SLO health probe.
  kMetricsScrape = 22,
  kMetricsScrapeOk = 23,
  kTraceDump = 24,
  kTraceDumpOk = 25,
  kHealth = 26,
  kHealthOk = 27,
};

// Static display name for a message type ("Ingest", "KNearest", ...);
// "Unknown" for anything outside the catalogue. Used to label per-RPC
// metrics (`net.rpc_ms{type=Ingest}`).
const char* MsgTypeName(MsgType type);
// Static server-side span name ("rpc.Ingest"); "rpc.Unknown" outside
// the catalogue.
const char* RpcSpanName(MsgType type);

// ---- Feature negotiation ---------------------------------------------

// Optional Hello feature bits. A peer that understands none sends no
// feature field at all (the field is encoded only when non-zero), so
// old binaries interoperate: an old server answers a featureless Hello
// exactly as before, and a new client only sends kTraced envelopes
// after the server echoed the bit back.
constexpr uint64_t kFeatureTraceContext = 1ull << 0;
constexpr uint64_t kSupportedFeatures = kFeatureTraceContext;

// ---- Envelope helpers -------------------------------------------------

// Reads the leading type byte (false on an empty payload).
bool PeekType(const std::string& payload, MsgType* type);

// Encodes `kError || code || message` from a non-OK Status.
void EncodeError(const Status& status, std::string* out);
// Decodes an error payload back into a Status (IoError on malformed).
Status DecodeError(const std::string& payload);

// ---- Hello / codec negotiation ---------------------------------------

struct HelloRequest {
  uint64_t protocol_version = kProtocolVersion;
  uint64_t codec_mask = kSupportedCodecs;
  // Feature bits the client wants (kFeature*); encoded as an optional
  // trailing varint, omitted when zero so old servers still decode.
  uint64_t feature_mask = 0;
};
struct HelloResponse {
  uint64_t protocol_version = kProtocolVersion;
  Codec codec = Codec::kRaw;  // the codec the server will use for blocks
  // Intersection of the client's request with kSupportedFeatures; same
  // omitted-when-zero trailing encoding.
  uint64_t feature_mask = 0;
};
void Encode(const HelloRequest& msg, std::string* out);
void Encode(const HelloResponse& msg, std::string* out);
bool Decode(const std::string& payload, HelloRequest* msg);
bool Decode(const std::string& payload, HelloResponse* msg);

// ---- Ingest ----------------------------------------------------------

struct IngestRequest {
  OperationBatch ops;
};
struct IngestResponse {
  // False when admission rejected the batch (kReject backpressure with
  // a full queue); the client may retry after backoff.
  bool accepted = false;
  // Global ids assigned/affected, in operation order (adds report the
  // id the record materialized as).
  std::vector<uint64_t> ids;
};
void Encode(const IngestRequest& msg, std::string* out);
void Encode(const IngestResponse& msg, std::string* out);
bool Decode(const std::string& payload, IngestRequest* msg);
bool Decode(const std::string& payload, IngestResponse* msg);

// ---- Queries ---------------------------------------------------------

struct ResultInfoWire {
  uint64_t epoch = 0;
  uint64_t staleness = 0;
  bool served = false;
};

struct ClusterOfRequest {
  uint64_t global_id = 0;
  uint64_t max_staleness = UINT64_MAX;  // ReadRouter::kUnbounded
};
struct ClusterOfResponse {
  ResultInfoWire info;
  std::vector<uint64_t> members;
  double avg_intra = 0.0;
};
void Encode(const ClusterOfRequest& msg, std::string* out);
void Encode(const ClusterOfResponse& msg, std::string* out);
bool Decode(const std::string& payload, ClusterOfRequest* msg);
bool Decode(const std::string& payload, ClusterOfResponse* msg);

struct KNearestRequest {
  Record probe;
  uint64_t k = 1;
  uint64_t max_staleness = UINT64_MAX;
};
struct KNearestResponse {
  ResultInfoWire info;
  struct Hit {
    std::vector<uint64_t> members;
    double similarity = 0.0;
    double avg_intra = 0.0;
  };
  std::vector<Hit> hits;
};
void Encode(const KNearestRequest& msg, std::string* out);
void Encode(const KNearestResponse& msg, std::string* out);
bool Decode(const std::string& payload, KNearestRequest* msg);
bool Decode(const std::string& payload, KNearestResponse* msg);

struct StatsRequest {
  uint64_t max_staleness = UINT64_MAX;
};
struct StatsResponse {
  ResultInfoWire info;
  uint64_t objects = 0;
  uint64_t clusters = 0;
  double total_intra_sum = 0.0;
};
void Encode(const StatsRequest& msg, std::string* out);
void Encode(const StatsResponse& msg, std::string* out);
bool Decode(const std::string& payload, StatsRequest* msg);
bool Decode(const std::string& payload, StatsResponse* msg);

// ---- Replication stream ----------------------------------------------

struct ReplStateRequest {};
struct ReplStateResponse {
  // True once the primary has sealed its last epoch (CLI --linger runs
  // set this when the input stream is exhausted); tailing followers
  // stop once they have mirrored everything below.
  bool stream_done = false;
  std::vector<uint64_t> base_epochs;
  std::vector<uint64_t> delta_epochs;
};
void Encode(const ReplStateRequest& msg, std::string* out);
void Encode(const ReplStateResponse& msg, std::string* out);
bool Decode(const std::string& payload, ReplStateRequest* msg);
bool Decode(const std::string& payload, ReplStateResponse* msg);

struct FetchDeltaRequest {
  uint64_t epoch = 0;
};
struct FetchBaseManifestRequest {
  uint64_t epoch = 0;
};
struct FetchBaseManifestResponse {
  std::vector<std::string> files;  // names relative to the base dir
};
struct FetchBaseFileRequest {
  uint64_t epoch = 0;
  std::string name;
};
// FetchDelta / FetchBaseFile responses carry one codec block
// (codec.h) holding the file bytes; decode with DecodeBlock.
struct BlockResponse {
  std::string block;
};
void Encode(const FetchDeltaRequest& msg, std::string* out);
void Encode(const FetchBaseManifestRequest& msg, std::string* out);
void Encode(const FetchBaseManifestResponse& msg, std::string* out);
void Encode(const FetchBaseFileRequest& msg, std::string* out);
void Encode(MsgType type, const BlockResponse& msg, std::string* out);
bool Decode(const std::string& payload, FetchDeltaRequest* msg);
bool Decode(const std::string& payload, FetchBaseManifestRequest* msg);
bool Decode(const std::string& payload, FetchBaseManifestResponse* msg);
bool Decode(const std::string& payload, FetchBaseFileRequest* msg);
bool Decode(const std::string& payload, BlockResponse* msg);

// ---- Trace-context envelope ------------------------------------------

// Wire form of obs::TraceContext: `kTraced || trace_id || parent_span_id
// || u8 flags (bit 0 = sampled) || inner payload`. The inner payload is
// a complete request (`u8 type || body`); responses are never wrapped.
struct TraceContextWire {
  uint64_t trace_id = 0;
  uint64_t parent_span_id = 0;
  bool sampled = true;
};
void EncodeTraced(const TraceContextWire& ctx, const std::string& inner,
                  std::string* out);
// On success `*inner` holds the unwrapped request payload.
bool DecodeTraced(const std::string& payload, TraceContextWire* ctx,
                  std::string* inner);

// ---- Introspection ---------------------------------------------------

struct MetricsScrapeRequest {};
struct MetricsScrapeResponse {
  std::string text;  // Prometheus text exposition
};
void Encode(const MetricsScrapeRequest& msg, std::string* out);
void Encode(const MetricsScrapeResponse& msg, std::string* out);
bool Decode(const std::string& payload, MetricsScrapeRequest* msg);
bool Decode(const std::string& payload, MetricsScrapeResponse* msg);

struct TraceDumpRequest {};
struct TraceDumpResponse {
  std::string json;  // Chrome-trace JSON
};
void Encode(const TraceDumpRequest& msg, std::string* out);
void Encode(const TraceDumpResponse& msg, std::string* out);
bool Decode(const std::string& payload, TraceDumpRequest* msg);
bool Decode(const std::string& payload, TraceDumpResponse* msg);

struct HealthRequest {};
struct HealthResponse {
  // True iff no watchdog alert is active on the server.
  bool ok = true;
  uint64_t alerts_active = 0;
  std::vector<std::string> alerts;  // active alert names, sorted
};
void Encode(const HealthRequest& msg, std::string* out);
void Encode(const HealthResponse& msg, std::string* out);
bool Decode(const std::string& payload, HealthRequest* msg);
bool Decode(const std::string& payload, HealthResponse* msg);

// ---- Shutdown --------------------------------------------------------

void EncodeShutdown(std::string* out);
void EncodeShutdownOk(std::string* out);

}  // namespace net
}  // namespace dynamicc

#endif  // DYNAMICC_NET_RPC_H_
