// Blocking typed client for the ServerFrontEnd RPC surface.
//
// One NetClient wraps one connection: Connect() dials, performs the
// Hello handshake (protocol version check + codec negotiation) and
// then issues synchronous request/response calls. Not thread-safe —
// one client per thread, they are cheap.
//
// Ingest supports app-level coalescing: QueueOp() buffers operations
// locally and FlushOps() ships them as one Ingest RPC once
// `coalesce_ops` accumulate (Nagle is off; batching is explicit and
// measurable instead of kernel-timed).
#ifndef DYNAMICC_NET_CLIENT_H_
#define DYNAMICC_NET_CLIENT_H_

#include <array>
#include <cstdint>
#include <string>

#include "net/codec.h"
#include "net/rpc.h"
#include "net/socket.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace dynamicc {
namespace net {

class NetClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    // 0 = block forever; anything else bounds each send/recv.
    int io_timeout_ms = 30000;
    uint64_t codec_mask = kSupportedCodecs;
    uint64_t max_frame_bytes = kMaxFrameBytes;
    // Ops buffered before FlushOps() auto-fires from QueueOp().
    size_t coalesce_ops = 64;
    // When set, every RPC records its round-trip latency into
    // `net.client.rpc_ms{type=<Type>}`.
    obs::MetricsRegistry* metrics = nullptr;
    // When set, Connect() requests kFeatureTraceContext and — once the
    // server echoes it — every non-Hello RPC opens an "rpc.client" span
    // and ships its trace context in a kTraced envelope: originated
    // fresh per call, or propagated from the thread's ambient context
    // if one is active.
    obs::Tracer* tracer = nullptr;
  };

  explicit NetClient(Options options) : options_(std::move(options)) {}

  // Dials and runs the Hello handshake.
  Status Connect();
  void Close() { socket_.Close(); }
  bool connected() const { return socket_.connected(); }
  // The codec the server will use for FetchDelta/FetchBaseFile blocks.
  Codec negotiated_codec() const { return codec_; }

  // ---- Ingest ----
  Status Ingest(const OperationBatch& ops, IngestResponse* response);
  // Buffers |op|; ships automatically at `coalesce_ops`. |response| is
  // filled only when a flush fired (check *flushed).
  Status QueueOp(const DataOperation& op, IngestResponse* response,
                 bool* flushed);
  Status FlushOps(IngestResponse* response);
  size_t queued_ops() const { return pending_.size(); }

  // ---- Queries ----
  Status ClusterOf(uint64_t global_id, uint64_t max_staleness,
                   ClusterOfResponse* response);
  Status KNearest(const Record& probe, uint64_t k, uint64_t max_staleness,
                  KNearestResponse* response);
  Status Stats(uint64_t max_staleness, StatsResponse* response);

  // ---- Replication stream ----
  Status ReplState(ReplStateResponse* response);
  // Fetches + decodes one delta file; |raw| holds the exact on-disk
  // bytes of the primary's delta file.
  Status FetchDelta(uint64_t epoch, std::string* raw);
  Status FetchBaseManifest(uint64_t epoch,
                           FetchBaseManifestResponse* response);
  Status FetchBaseFile(uint64_t epoch, const std::string& name,
                       std::string* raw);

  // ---- Admin ----
  Status Shutdown();

  // ---- Introspection ----
  // Prometheus text scraped from the server's registry.
  Status MetricsScrape(std::string* text);
  // Chrome-trace JSON of the server's trace rings.
  Status TraceDump(std::string* json);
  Status Health(HealthResponse* response);

  uint64_t bytes_sent() const { return socket_.bytes_sent(); }
  uint64_t bytes_received() const { return socket_.bytes_received(); }
  // Feature bits the server acknowledged in HelloOk.
  uint64_t server_features() const { return server_features_; }
  // Trace id of the most recent traced RPC (0 before any).
  uint64_t last_trace_id() const { return last_trace_id_; }

 private:
  // Sends |request| and receives one response payload; converts kError
  // payloads into a non-OK Status. Times the round trip per type and
  // wraps the request in a kTraced envelope when tracing is on.
  Status Call(const std::string& request, std::string* response);
  Status CallRaw(const std::string& request, std::string* response);
  // Fetch + DecodeBlock for the two block-response RPCs.
  Status FetchBlock(const std::string& request, std::string* raw);
  bool tracing_enabled() const {
    return options_.tracer != nullptr &&
           (server_features_ & kFeatureTraceContext) != 0;
  }
  obs::Histogram* RpcHistogram(MsgType type);

  Options options_;
  FramedSocket socket_;
  Codec codec_ = Codec::kRaw;
  uint64_t server_features_ = 0;
  uint64_t last_trace_id_ = 0;
  OperationBatch pending_;
  // Lazy per-type cache for net.client.rpc_ms{type=...} (the client is
  // single-threaded, so a plain array is enough).
  std::array<obs::Histogram*, 256> rpc_ms_{};
};

}  // namespace net
}  // namespace dynamicc

#endif  // DYNAMICC_NET_CLIENT_H_
