// The serving surface over one process: ingest, queries, replication
// stream, and shutdown, multiplexed on a single NetServer.
//
//   Ingest        → ShardedDynamicCService::Ingest (the existing
//                   block/reject backpressure surfaces as the wire
//                   `accepted` flag; assigned global ids ride back)
//   ClusterOf /   → ReadRouter when one is attached (staleness-bounded
//   KNearest /      routing over the local fleet), else a direct
//   Stats           QueryClient on the service's own read views
//   ReplState /   → the replication directory this primary writes
//   FetchDelta /    (DeltaStream servers are just front ends with a
//   FetchBase*      replication_dir; file bytes ship as codec blocks
//                   using the per-connection negotiated codec)
//   Shutdown      → stops the server after the reply drains (the CI
//                   smoke uses this to tear down a --listen primary
//                   without signals)
//
// The handler runs on the NetServer loop thread; Ingest and the query
// surface are internally concurrent, so the loop thread is only doing
// encode/decode and admission.
#ifndef DYNAMICC_NET_FRONT_END_H_
#define DYNAMICC_NET_FRONT_END_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "net/codec.h"
#include "net/event_loop.h"
#include "net/rpc.h"
#include "obs/watchdog.h"
#include "service/query_api.h"
#include "service/sharded_service.h"
#include "util/status.h"

namespace dynamicc {
namespace net {

class ServerFrontEnd {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral
    // When non-empty, the replication-stream RPCs serve this
    // directory (the primary's --replicate-to dir).
    std::string replication_dir;
    uint64_t max_frame_bytes = kMaxFrameBytes;
    obs::MetricsRegistry* metrics = nullptr;
    // When set, every handler runs under an "rpc.<Type>" ScopedSpan that
    // joins the inbound kTraced context, and TraceDump serves this
    // tracer's rings. Pass the service's tracer so one export holds the
    // RPC spans and the shard-side spans they triggered.
    obs::Tracer* tracer = nullptr;
    // When set, Health reports its active alerts; without one Health is
    // trivially ok (nothing is watching).
    obs::Watchdog* watchdog = nullptr;
    // Registry MetricsScrape renders. Defaults to `metrics`; point it
    // elsewhere to scrape a registry the serving path does not mutate
    // (the e2e test pins remote-vs-local byte equality this way).
    obs::MetricsRegistry* scrape_registry = nullptr;
  };

  // |service| handles ingest and (when it serves reads) direct
  // queries; may be null for a pure replication-relay server.
  // |router| optionally routes queries across a local fleet; may be
  // null. Both must outlive the front end.
  ServerFrontEnd(ShardedDynamicCService* service, const ReadRouter* router,
                 Options options);

  Status Start();
  void Stop();
  // Blocks until the server stops on its own (a Shutdown RPC).
  void Join();

  uint16_t port() const { return server_->port(); }
  NetServer* server() { return server_.get(); }

  // Flips the stream_done bit in ReplState responses: the primary's
  // input stream is exhausted and no further epochs will seal. Tailing
  // followers drain what is listed, then stop.
  void SetStreamDone(bool done) {
    stream_done_.store(done, std::memory_order_release);
  }

 private:
  NetServer::HandleResult Handle(uint64_t conn_id, const std::string& request,
                                 std::string* response);
  // The per-type dispatch switch; Handle() wraps it with trace-context
  // unwrapping, the server-side span, and per-RPC telemetry.
  NetServer::HandleResult Dispatch(uint64_t conn_id, MsgType type,
                                   const std::string& request,
                                   std::string* response);
  void HandleHello(uint64_t conn_id, const std::string& request,
                   std::string* response);
  void HandleIngest(const std::string& request, std::string* response);
  void HandleClusterOf(const std::string& request, std::string* response);
  void HandleKNearest(const std::string& request, std::string* response);
  void HandleStats(const std::string& request, std::string* response);
  void HandleReplState(std::string* response);
  void HandleFetchDelta(uint64_t conn_id, const std::string& request,
                        std::string* response);
  void HandleFetchBaseManifest(const std::string& request,
                               std::string* response);
  void HandleFetchBaseFile(uint64_t conn_id, const std::string& request,
                           std::string* response);
  void HandleMetricsScrape(const std::string& request, std::string* response);
  void HandleTraceDump(const std::string& request, std::string* response);
  void HandleHealth(const std::string& request, std::string* response);
  // Reads |path| and encodes it as one codec block using the
  // connection's negotiated codec.
  Status EncodeFileBlock(uint64_t conn_id, const std::string& path,
                         MsgType ok_type, std::string* response);
  Codec CodecFor(uint64_t conn_id) const;

  ShardedDynamicCService* service_;
  const ReadRouter* router_;
  Options options_;
  std::unique_ptr<NetServer> server_;
  std::atomic<bool> stream_done_{false};

  // Per-connection negotiated codec (Hello). Guarded by a mutex: the
  // loop thread writes, tests read.
  mutable std::mutex codec_mu_;
  std::unordered_map<uint64_t, Codec> conn_codec_;

  obs::Counter* ingest_batches_ = nullptr;
  obs::Counter* ingest_ops_ = nullptr;
  obs::Counter* ingest_rejected_ = nullptr;
  obs::Counter* rpc_queries_ = nullptr;
  obs::Counter* delta_bytes_raw_ = nullptr;
  obs::Counter* delta_bytes_wire_ = nullptr;

  // Per-message-type telemetry, indexed by the request's type byte
  // (registered eagerly for every request type the switch serves, so
  // scrapes expose the full key set before traffic arrives).
  std::array<obs::Histogram*, 256> rpc_ms_{};
  std::array<obs::Histogram*, 256> rpc_request_bytes_{};
  std::array<obs::Histogram*, 256> rpc_response_bytes_{};
};

}  // namespace net
}  // namespace dynamicc

#endif  // DYNAMICC_NET_FRONT_END_H_
