// Single-threaded epoll server loop.
//
// One NetServer owns one listening socket, one epoll instance, and one
// background thread. Connections are non-blocking with per-connection
// read/write buffers: reads accumulate until a full varint-prefixed
// frame is available, the handler runs synchronously on the loop
// thread, and replies queue in the write buffer — EPOLLOUT is armed
// only while a reply is partially written, so slow readers never block
// the loop and fast paths never pay the extra epoll_ctl.
//
// The handler is invoked serialized on the loop thread; it must be
// fast or hand work off (the front end leans on the service's own
// thread pools — Ingest and the read path are internally concurrent).
// A malformed frame (bad varint, over-limit length, handler rejection)
// counts a net.decode_errors and closes that connection; the server
// itself never dies on bad input.
#ifndef DYNAMICC_NET_EVENT_LOOP_H_
#define DYNAMICC_NET_EVENT_LOOP_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <thread>
#include <unordered_map>

#include "net/wire_format.h"
#include "obs/metrics.h"
#include "util/status.h"

namespace dynamicc {
namespace net {

class NetServer {
 public:
  // What the handler wants done after its reply is sent.
  enum class HandleResult {
    kReply,           // send |response|, keep the connection
    kClose,           // send |response| (if any), then close this connection
    kStopAfterReply,  // send |response|, then shut the whole server down
  };
  // |conn_id| identifies the connection across a session (stable until
  // close) so handlers can keep per-stream state, e.g. the negotiated
  // compression codec.
  using Handler =
      std::function<HandleResult(uint64_t conn_id, const std::string& request,
                                 std::string* response)>;

  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;  // 0 = ephemeral
    uint64_t max_frame_bytes = kMaxFrameBytes;
    obs::MetricsRegistry* metrics = nullptr;
    // Invoked on the loop thread when a connection goes away (handlers
    // drop per-stream state here).
    std::function<void(uint64_t conn_id)> on_close;
  };

  NetServer(Options options, Handler handler);
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  // Binds, listens, and starts the loop thread.
  Status Start();
  // Signals the loop to exit and joins it. Idempotent.
  void Stop();
  // Blocks until the loop exits on its own (e.g. a kStopAfterReply).
  void Join();

  bool running() const { return running_.load(std::memory_order_acquire); }
  uint16_t port() const { return port_; }
  uint64_t decode_errors() const {
    return decode_errors_.load(std::memory_order_relaxed);
  }

 private:
  struct Conn {
    uint64_t id = 0;
    std::string in;
    std::string out;
    size_t out_offset = 0;
    bool close_after_flush = false;
    bool wants_writable = false;
    // Lifetime accounting, reported as histograms when the connection
    // closes (any path: peer close, decode error, server teardown).
    uint64_t frames = 0;
    std::chrono::steady_clock::time_point opened;
  };

  void Loop();
  void AcceptAll();
  // Returns false when the connection must be closed.
  bool ReadAndDispatch(int fd, Conn* conn);
  bool FlushConn(int fd, Conn* conn);
  void UpdateWritable(int fd, Conn* conn);
  // Lifetime histograms + unflushed-out-buffer accounting for every
  // close path (CloseConn and CloseAll both go through it).
  void AccountConnClose(const Conn& conn);
  void CloseConn(int fd);
  void CloseAll();

  Options options_;
  Handler handler_;
  int listen_fd_ = -1;
  int epoll_fd_ = -1;
  int wake_fds_[2] = {-1, -1};
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  bool stop_after_flush_ = false;  // loop-thread only
  uint64_t next_conn_id_ = 1;      // loop-thread only
  std::unordered_map<int, Conn> conns_;
  std::atomic<uint64_t> decode_errors_{0};

  uint64_t out_high_water_ = 0;  // loop-thread only

  obs::Counter* bytes_in_ = nullptr;
  obs::Counter* bytes_out_ = nullptr;
  obs::Counter* frames_in_ = nullptr;
  obs::Counter* frames_out_ = nullptr;
  obs::Counter* frame_bytes_in_ = nullptr;
  obs::Counter* frame_bytes_out_ = nullptr;
  obs::Counter* bytes_dropped_ = nullptr;
  obs::Counter* connections_ = nullptr;
  obs::Counter* decode_errors_metric_ = nullptr;
  obs::Gauge* active_connections_ = nullptr;
  obs::Gauge* loop_lag_ms_ = nullptr;
  obs::Gauge* out_buffer_high_water_ = nullptr;
  obs::Histogram* request_ms_ = nullptr;
  obs::Histogram* conn_lifetime_ms_ = nullptr;
  obs::Histogram* conn_frames_ = nullptr;
};

}  // namespace net
}  // namespace dynamicc

#endif  // DYNAMICC_NET_EVENT_LOOP_H_
