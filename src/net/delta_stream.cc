#include "net/delta_stream.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <thread>
#include <utility>

#include "replication/delta_log.h"
#include "util/wire.h"

namespace dynamicc {
namespace net {

DeltaStreamClient::DeltaStreamClient(Options options)
    : options_(std::move(options)), backoff_(options_.backoff) {
  NetClient::Options client_options = options_.client;
  client_options.host = options_.host;
  client_options.port = options_.port;
  client_ = std::make_unique<NetClient>(std::move(client_options));
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    reconnects_metric_ = reg.GetCounter("net.reconnects");
    deltas_mirrored_ = reg.GetCounter("replication.stream_deltas");
    bases_mirrored_ = reg.GetCounter("replication.stream_bases");
    poll_backoff_ms_ = reg.GetGauge("replication.poll_backoff_ms");
  }
}

Status DeltaStreamClient::Connect() {
  client_->Close();
  if (connected_once_) {
    ++reconnects_;
    if (reconnects_metric_ != nullptr) reconnects_metric_->Add(1);
  }
  Status status = client_->Connect();
  if (status.ok()) connected_once_ = true;
  return status;
}

Status DeltaStreamClient::MirrorBase(uint64_t epoch) {
  DeltaLog local(options_.mirror_dir);
  FetchBaseManifestResponse manifest;
  Status status = client_->FetchBaseManifest(epoch, &manifest);
  if (!status.ok()) return status;

  // Fetch into a ".saving" scratch dir and rename: DeltaLog::List and
  // the follower never see a half-mirrored base.
  std::string final_dir = local.BaseDirFor(epoch);
  std::string scratch = final_dir + ".saving";
  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);
  std::filesystem::create_directories(scratch, ec);
  if (ec) {
    return Status::IoError("cannot create " + scratch + ": " + ec.message());
  }
  for (const std::string& name : manifest.files) {
    std::string bytes;
    status = client_->FetchBaseFile(epoch, name, &bytes);
    if (!status.ok()) return status;
    status = WriteFileBytes(JoinPath(scratch, name), bytes);
    if (!status.ok()) return status;
  }
  std::filesystem::remove_all(final_dir, ec);
  ec.clear();
  std::filesystem::rename(scratch, final_dir, ec);
  if (ec) {
    return Status::IoError("cannot publish " + final_dir + ": " +
                           ec.message());
  }
  if (bases_mirrored_ != nullptr) bases_mirrored_->Add(1);
  return Status::Ok();
}

Status DeltaStreamClient::MirrorDelta(uint64_t epoch) {
  DeltaLog local(options_.mirror_dir);
  std::string bytes;
  Status status = client_->FetchDelta(epoch, &bytes);
  if (!status.ok()) return status;
  status = WriteFileAtomic(local.DeltaPathFor(epoch), bytes);
  if (!status.ok()) return status;
  if (deltas_mirrored_ != nullptr) deltas_mirrored_->Add(1);
  return Status::Ok();
}

Status DeltaStreamClient::SyncOnce(SyncResult* result) {
  *result = SyncResult{};
  if (!client_->connected()) {
    return Status::IoError("not connected");
  }
  ReplStateResponse remote;
  Status status = client_->ReplState(&remote);
  if (!status.ok()) return status;
  result->stream_done = remote.stream_done;

  DeltaLog local(options_.mirror_dir);
  status = local.Init();
  if (!status.ok()) return status;
  DeltaLog::State have;
  status = local.List(&have);
  if (!status.ok()) return status;

  for (uint64_t epoch : remote.base_epochs) {
    if (std::binary_search(have.bases.begin(), have.bases.end(), epoch)) {
      continue;
    }
    status = MirrorBase(epoch);
    if (!status.ok()) return status;
    result->progressed = true;
  }
  for (uint64_t epoch : remote.delta_epochs) {
    if (!std::binary_search(have.deltas.begin(), have.deltas.end(), epoch)) {
      status = MirrorDelta(epoch);
      if (!status.ok()) return status;
      result->progressed = true;
    }
    result->newest_delta = std::max(result->newest_delta, epoch);
  }
  for (uint64_t epoch : have.deltas) {
    result->newest_delta = std::max(result->newest_delta, epoch);
  }
  result->fully_mirrored = true;
  return Status::Ok();
}

Status DeltaStreamClient::TailUntilDone(
    const std::function<void()>& on_progress) {
  uint64_t failed_dials = 0;
  uint64_t failed_syncs = 0;
  while (true) {
    if (!client_->connected()) {
      Status status = Connect();
      if (!status.ok()) {
        if (++failed_dials > options_.max_reconnect_attempts) return status;
        uint64_t delay = backoff_.NextDelayMs();
        if (poll_backoff_ms_ != nullptr) {
          poll_backoff_ms_->Set(static_cast<double>(delay));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(delay));
        continue;
      }
      failed_dials = 0;
    }
    SyncResult result;
    Status status = SyncOnce(&result);
    if (!status.ok()) {
      // Transport hiccup: drop the connection and re-dial with backoff.
      // Persistent failures (e.g. a local I/O error that reconnecting
      // cannot fix) give up after the reconnect budget.
      if (++failed_syncs > options_.max_reconnect_attempts) return status;
      client_->Close();
      continue;
    }
    failed_syncs = 0;
    if (result.progressed) {
      backoff_.Reset();
      if (poll_backoff_ms_ != nullptr) poll_backoff_ms_->Set(0.0);
      if (on_progress) on_progress();
    }
    if (result.stream_done && result.fully_mirrored) return Status::Ok();
    if (!result.progressed) {
      uint64_t delay = backoff_.NextDelayMs();
      if (poll_backoff_ms_ != nullptr) {
        poll_backoff_ms_->Set(static_cast<double>(delay));
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(delay));
    }
  }
}

}  // namespace net
}  // namespace dynamicc
