// Streaming replication transport: mirrors a primary's replication
// directory over TCP so a Follower can tail it without any shared
// filesystem.
//
// The server side is just a ServerFrontEnd with a replication_dir (it
// serves ReplState / FetchDelta / FetchBaseManifest / FetchBaseFile).
// The client side — this file — keeps a persistent connection and
// copies whatever the server lists into a local mirror directory:
//
//   base-<E>/       fetched file-by-file into "base-<E>.saving", then
//                   renamed (DeltaLog::List ignores *.saving, so a
//                   half-fetched base is invisible to the follower)
//   delta-<E>.dat   fetched as one codec block, published with
//                   WriteFileAtomic
//
// File bytes are copied verbatim (compressed only in transit, verified
// by the block checksum), so the mirror is byte-identical to the
// primary's directory and the existing Follower replays it unchanged —
// byte-identical follower state by construction.
//
// Reconnects and idle polling use PollBackoff (bounded exponential);
// the current delay is exported as replication.poll_backoff_ms and
// re-dials count net.reconnects.
#ifndef DYNAMICC_NET_DELTA_STREAM_H_
#define DYNAMICC_NET_DELTA_STREAM_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/client.h"
#include "obs/metrics.h"
#include "replication/backoff.h"
#include "util/status.h"

namespace dynamicc {
namespace net {

class DeltaStreamClient {
 public:
  struct Options {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
    std::string mirror_dir;
    NetClient::Options client;  // host/port are overwritten from above
    PollBackoff::Options backoff;
    // Consecutive failed dials before TailUntilDone gives up
    // (SyncOnce itself never re-dials).
    uint64_t max_reconnect_attempts = 8;
    obs::MetricsRegistry* metrics = nullptr;
  };

  // What one sync pass saw. `fully_mirrored` means every base and
  // delta the server listed now exists locally.
  struct SyncResult {
    bool progressed = false;
    bool fully_mirrored = false;
    bool stream_done = false;
    uint64_t newest_delta = 0;  // newest delta epoch mirrored locally
  };

  explicit DeltaStreamClient(Options options);

  // Dials (or re-dials) the server. Counts net.reconnects on every
  // dial after the first successful one.
  Status Connect();
  void Close() { client_->Close(); }
  bool connected() const { return client_->connected(); }

  // One pass: list the server's state, fetch everything missing
  // locally. Fails fast on transport errors (caller reconnects).
  Status SyncOnce(SyncResult* result);

  // Tails until the server reports stream_done and the mirror holds
  // everything listed. Sleeps with bounded exponential backoff between
  // empty polls; reconnects on transport errors. `on_progress` (may be
  // null) runs after every pass that mirrored something new — the CLI
  // replays the follower there, pipelining replay with transfer.
  Status TailUntilDone(const std::function<void()>& on_progress);

  uint64_t reconnects() const { return reconnects_; }
  NetClient* client() { return client_.get(); }

 private:
  Status MirrorBase(uint64_t epoch);
  Status MirrorDelta(uint64_t epoch);

  Options options_;
  std::unique_ptr<NetClient> client_;
  PollBackoff backoff_;
  bool connected_once_ = false;
  uint64_t reconnects_ = 0;

  obs::Counter* reconnects_metric_ = nullptr;
  obs::Counter* deltas_mirrored_ = nullptr;
  obs::Counter* bases_mirrored_ = nullptr;
  obs::Gauge* poll_backoff_ms_ = nullptr;
};

}  // namespace net
}  // namespace dynamicc

#endif  // DYNAMICC_NET_DELTA_STREAM_H_
