// Binary wire primitives for the networked serving layer.
//
// Frames on a connection are varint-length-prefixed byte strings:
//
//     frame := varint(payload_size) || payload
//
// The payload's first byte is the message type (see rpc.h); everything
// after it is message-specific. Varints are LEB128 (7 bits per byte,
// high bit = continuation), at most 10 bytes for a uint64_t. A frame
// whose declared size exceeds the negotiated bound is a protocol error:
// decoders must fail cleanly, never trust the declared size.
//
// BinaryWriter / BinaryReader are the bounds-checked primitives every
// message encoder/decoder is built from. Readers never read past the
// end of the buffer; all failures are reported through the bool return
// (no exceptions anywhere in this layer).
#ifndef DYNAMICC_NET_WIRE_FORMAT_H_
#define DYNAMICC_NET_WIRE_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <string>

namespace dynamicc {
namespace net {

// Hard ceiling for a single frame. Large enough for a full base
// snapshot file in one response; small enough that a corrupt length
// prefix cannot make a peer allocate gigabytes.
constexpr uint64_t kMaxFrameBytes = 64ull << 20;  // 64 MiB

// Appends the LEB128 encoding of |value| to |out|.
void PutVarint(std::string* out, uint64_t value);

// Decodes a varint from [data, data+size). Returns the number of bytes
// consumed, 0 if the buffer ends mid-varint, or -1 if the encoding is
// invalid (more than 10 bytes, or a 10th byte with excess bits).
int GetVarint(const char* data, size_t size, uint64_t* value);

// Serializes little-endian fixed-width integers (and doubles via their
// IEEE-754 bit pattern, which keeps replayed state byte-identical).
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutVar(uint64_t v) { PutVarint(out_, v); }
  void PutDouble(double v);
  // varint(size) || raw bytes.
  void PutBytes(const std::string& bytes);
  void PutBytes(const char* data, size_t size);

  std::string* out() { return out_; }

 private:
  std::string* out_;
};

// Bounds-checked cursor over an immutable buffer. Every accessor
// returns false (leaving outputs unspecified) instead of reading out
// of range.
class BinaryReader {
 public:
  BinaryReader(const char* data, size_t size) : data_(data), size_(size) {}
  explicit BinaryReader(const std::string& bytes)
      : BinaryReader(bytes.data(), bytes.size()) {}

  bool GetU8(uint8_t* v);
  bool GetVar(uint64_t* v);
  bool GetDouble(double* v);
  // Reads varint(size) || bytes; fails if size exceeds the remainder.
  bool GetBytes(std::string* out);

  size_t remaining() const { return size_ - pos_; }
  bool done() const { return pos_ == size_; }
  const char* cursor() const { return data_ + pos_; }
  void Skip(size_t n) { pos_ += n <= remaining() ? n : remaining(); }

 private:
  const char* data_;
  size_t size_;
  size_t pos_ = 0;
};

// Appends varint(payload.size()) || payload to |out|.
void AppendFrame(std::string* out, const std::string& payload);

// Attempts to slice one frame off the front of |buffer|.
// Returns:  1 and fills |payload|/|consumed| when a full frame is
//              available (caller erases |consumed| bytes);
//           0 when more bytes are needed;
//          -1 on a malformed or over-limit length prefix.
int TryParseFrame(const std::string& buffer, uint64_t max_frame_bytes,
                  std::string* payload, size_t* consumed);

}  // namespace net
}  // namespace dynamicc

#endif  // DYNAMICC_NET_WIRE_FORMAT_H_
