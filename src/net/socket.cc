#include "net/socket.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include "net/wire_format.h"

namespace dynamicc {
namespace net {
namespace {

Status Errno(const std::string& what) {
  return Status::IoError(what + ": " + strerror(errno));
}

Status FillAddr(const std::string& host, uint16_t port, sockaddr_in* addr) {
  memset(addr, 0, sizeof(*addr));
  addr->sin_family = AF_INET;
  addr->sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr->sin_addr) != 1) {
    return Status::InvalidArgument("bad IPv4 address: " + host);
  }
  return Status::Ok();
}

}  // namespace

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void SetIoTimeout(int fd, int timeout_ms) {
  if (timeout_ms <= 0) return;
  timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

Status ListenTcp(const std::string& host, uint16_t port, int* fd,
                 uint16_t* bound_port) {
  sockaddr_in addr;
  Status st = FillAddr(host, port, &addr);
  if (!st.ok()) return st;
  int s = socket(AF_INET, SOCK_STREAM, 0);
  if (s < 0) return Errno("socket");
  int one = 1;
  setsockopt(s, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (bind(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(s);
    return Errno("bind");
  }
  if (listen(s, 128) < 0) {
    close(s);
    return Errno("listen");
  }
  socklen_t len = sizeof(addr);
  if (getsockname(s, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    close(s);
    return Errno("getsockname");
  }
  st = SetNonBlocking(s);
  if (!st.ok()) {
    close(s);
    return st;
  }
  *fd = s;
  *bound_port = ntohs(addr.sin_port);
  return Status::Ok();
}

Status ConnectTcp(const std::string& host, uint16_t port, int* fd) {
  sockaddr_in addr;
  Status st = FillAddr(host, port, &addr);
  if (!st.ok()) return st;
  int s = socket(AF_INET, SOCK_STREAM, 0);
  if (s < 0) return Errno("socket");
  if (connect(s, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    close(s);
    return Errno("connect " + host + ":" + std::to_string(port));
  }
  SetNoDelay(s);
  *fd = s;
  return Status::Ok();
}

Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port) {
  size_t colon = spec.rfind(':');
  std::string port_str;
  if (colon == std::string::npos) {
    *host = "127.0.0.1";
    port_str = spec;
  } else {
    *host = spec.substr(0, colon);
    if (host->empty()) *host = "127.0.0.1";
    port_str = spec.substr(colon + 1);
  }
  char* end = nullptr;
  long p = strtol(port_str.c_str(), &end, 10);
  if (end == port_str.c_str() || *end != '\0' || p < 0 || p > 65535) {
    return Status::InvalidArgument("bad host:port spec: " + spec);
  }
  *port = static_cast<uint16_t>(p);
  return Status::Ok();
}

Status FramedSocket::Connect(const std::string& host, uint16_t port,
                             int timeout_ms) {
  Close();
  Status st = ConnectTcp(host, port, &fd_);
  if (!st.ok()) return st;
  SetIoTimeout(fd_, timeout_ms);
  return Status::Ok();
}

void FramedSocket::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Status FramedSocket::SendFrame(const std::string& payload) {
  if (fd_ < 0) return Status::IoError("send on closed socket");
  std::string frame;
  frame.reserve(payload.size() + 10);
  AppendFrame(&frame, payload);
  size_t sent = 0;
  while (sent < frame.size()) {
    ssize_t n = write(fd_, frame.data() + sent, frame.size() - sent);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write");
    }
    sent += static_cast<size_t>(n);
  }
  bytes_sent_ += frame.size();
  return Status::Ok();
}

Status FramedSocket::RecvFrame(uint64_t max_frame_bytes,
                               std::string* payload) {
  if (fd_ < 0) return Status::IoError("recv on closed socket");
  // Read the varint header one byte at a time (at most 10 bytes), then
  // the payload in bulk.
  std::string header;
  uint64_t size = 0;
  while (true) {
    char c;
    ssize_t n = read(fd_, &c, 1);
    if (n == 0) return Status::IoError("connection closed by peer");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    bytes_received_ += 1;
    header.push_back(c);
    int consumed = GetVarint(header.data(), header.size(), &size);
    if (consumed < 0) return Status::IoError("malformed frame header");
    if (consumed > 0) break;
    if (header.size() >= 10) return Status::IoError("malformed frame header");
  }
  if (size > max_frame_bytes) {
    return Status::IoError("frame exceeds limit: " + std::to_string(size));
  }
  payload->resize(static_cast<size_t>(size));
  size_t got = 0;
  while (got < size) {
    ssize_t n = read(fd_, &(*payload)[got], static_cast<size_t>(size) - got);
    if (n == 0) return Status::IoError("connection closed mid-frame");
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("read");
    }
    got += static_cast<size_t>(n);
    bytes_received_ += static_cast<uint64_t>(n);
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace dynamicc
