#include "net/event_loop.h"

#include <errno.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <utility>
#include <vector>

#include "net/socket.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dynamicc {
namespace net {
namespace {

constexpr size_t kReadChunk = 64 * 1024;
constexpr int kMaxEvents = 64;

}  // namespace

NetServer::NetServer(Options options, Handler handler)
    : options_(std::move(options)), handler_(std::move(handler)) {
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    bytes_in_ = reg.GetCounter("net.bytes_in");
    bytes_out_ = reg.GetCounter("net.bytes_out");
    frames_in_ = reg.GetCounter("net.frames_in");
    frames_out_ = reg.GetCounter("net.frames_out");
    frame_bytes_in_ = reg.GetCounter("net.frame_bytes_in");
    frame_bytes_out_ = reg.GetCounter("net.frame_bytes_out");
    bytes_dropped_ = reg.GetCounter("net.bytes_dropped");
    connections_ = reg.GetCounter("net.connections");
    decode_errors_metric_ = reg.GetCounter("net.decode_errors");
    active_connections_ = reg.GetGauge("net.active_connections");
    loop_lag_ms_ = reg.GetGauge("net.loop_lag_ms");
    out_buffer_high_water_ = reg.GetGauge("net.out_buffer_high_water");
    request_ms_ = reg.GetHistogram("net.request_ms");
    conn_lifetime_ms_ = reg.GetHistogram("net.conn_lifetime_ms");
    conn_frames_ = reg.GetHistogram("net.conn_frames");
  }
}

NetServer::~NetServer() {
  Stop();
}

Status NetServer::Start() {
  DYNAMICC_CHECK(!running_.load()) << "server already started";
  Status st = ListenTcp(options_.host, options_.port, &listen_fd_, &port_);
  if (!st.ok()) return st;
  epoll_fd_ = epoll_create1(0);
  if (epoll_fd_ < 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("epoll_create1 failed");
  }
  if (pipe(wake_fds_) != 0) {
    close(listen_fd_);
    close(epoll_fd_);
    listen_fd_ = epoll_fd_ = -1;
    return Status::IoError("pipe failed");
  }
  SetNonBlocking(wake_fds_[0]);

  epoll_event ev;
  ev.events = EPOLLIN;
  ev.data.fd = listen_fd_;
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, listen_fd_, &ev);
  ev.data.fd = wake_fds_[0];
  epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fds_[0], &ev);

  running_.store(true, std::memory_order_release);
  stop_requested_.store(false, std::memory_order_release);
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void NetServer::Stop() {
  stop_requested_.store(true, std::memory_order_release);
  if (wake_fds_[1] >= 0) {
    char c = 0;
    ssize_t ignored = write(wake_fds_[1], &c, 1);
    (void)ignored;
  }
  Join();
  // The wake pipe is closed here (never on the loop thread) so a
  // concurrent Stop() can always safely poke wake_fds_[1].
  for (int& fd : wake_fds_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
}

void NetServer::Join() {
  if (thread_.joinable()) thread_.join();
}

void NetServer::Loop() {
  std::vector<epoll_event> events(kMaxEvents);
  bool done = false;
  while (!done) {
    int n = epoll_wait(epoll_fd_, events.data(), kMaxEvents, 200);
    if (stop_requested_.load(std::memory_order_acquire)) break;
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    // Iteration lag: wall time the loop spends servicing this batch of
    // events — while it runs, every other connection waits.
    const auto iteration_start = std::chrono::steady_clock::now();
    for (int i = 0; i < n; ++i) {
      int fd = events[i].data.fd;
      uint32_t mask = events[i].events;
      if (fd == listen_fd_) {
        AcceptAll();
        continue;
      }
      if (fd == wake_fds_[0]) {
        char buf[64];
        while (read(wake_fds_[0], buf, sizeof(buf)) > 0) {
        }
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn* conn = &it->second;
      bool alive = true;
      if (mask & (EPOLLHUP | EPOLLERR)) {
        alive = false;
      } else {
        if (alive && (mask & EPOLLIN)) alive = ReadAndDispatch(fd, conn);
        if (alive && (mask & EPOLLOUT)) alive = FlushConn(fd, conn);
      }
      if (alive && conn->close_after_flush &&
          conn->out_offset == conn->out.size()) {
        alive = false;
      }
      if (!alive) CloseConn(fd);
    }
    if (n > 0 && loop_lag_ms_ != nullptr) {
      loop_lag_ms_->Set(
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - iteration_start)
              .count());
    }
    // A kStopAfterReply exits once its reply has drained (the
    // connection closes when flushed, which removes it from conns_).
    if (stop_after_flush_) {
      bool pending = false;
      for (const auto& kv : conns_) {
        if (kv.second.close_after_flush &&
            kv.second.out_offset < kv.second.out.size()) {
          pending = true;
          break;
        }
      }
      if (!pending) done = true;
    }
  }
  CloseAll();
  running_.store(false, std::memory_order_release);
}

void NetServer::AcceptAll() {
  while (true) {
    int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return;  // EAGAIN or transient error: back to the loop
    }
    SetNonBlocking(fd);
    SetNoDelay(fd);
    epoll_event ev;
    ev.events = EPOLLIN;
    ev.data.fd = fd;
    if (epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) != 0) {
      close(fd);
      continue;
    }
    Conn& conn = conns_[fd];
    conn.id = next_conn_id_++;
    conn.opened = std::chrono::steady_clock::now();
    if (connections_ != nullptr) connections_->Add(1);
    if (active_connections_ != nullptr) {
      active_connections_->Set(static_cast<double>(conns_.size()));
    }
  }
}

bool NetServer::ReadAndDispatch(int fd, Conn* conn) {
  char chunk[kReadChunk];
  while (true) {
    ssize_t n = read(fd, chunk, sizeof(chunk));
    if (n == 0) return false;  // peer closed
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    conn->in.append(chunk, static_cast<size_t>(n));
    if (bytes_in_ != nullptr) bytes_in_->Add(static_cast<uint64_t>(n));
    if (conn->in.size() > options_.max_frame_bytes + 16) break;
  }

  // Parse frames off the front without re-copying the buffer per frame.
  std::string payload;
  size_t erased = 0;
  while (true) {
    uint64_t size = 0;
    int header = GetVarint(conn->in.data() + erased, conn->in.size() - erased,
                           &size);
    if (header < 0 || (header > 0 && size > options_.max_frame_bytes)) {
      decode_errors_.fetch_add(1, std::memory_order_relaxed);
      if (decode_errors_metric_ != nullptr) decode_errors_metric_->Add(1);
      return false;
    }
    if (header == 0) break;
    size_t total = static_cast<size_t>(header) + static_cast<size_t>(size);
    if (conn->in.size() - erased < total) break;
    payload.assign(conn->in.data() + erased + header,
                   static_cast<size_t>(size));
    erased += total;
    conn->frames += 1;
    if (frames_in_ != nullptr) frames_in_->Add(1);
    if (frame_bytes_in_ != nullptr) frame_bytes_in_->Add(size);

    std::string response;
    HandleResult result;
    {
      ScopedTimer timer;
      timer.Record(request_ms_);
      result = handler_(conn->id, payload, &response);
    }
    std::string frame;
    frame.reserve(response.size() + 10);
    AppendFrame(&frame, response);
    conn->out.append(frame);
    if (frames_out_ != nullptr) frames_out_->Add(1);
    if (frame_bytes_out_ != nullptr) frame_bytes_out_->Add(response.size());
    const uint64_t pending =
        static_cast<uint64_t>(conn->out.size() - conn->out_offset);
    if (pending > out_high_water_) {
      out_high_water_ = pending;
      if (out_buffer_high_water_ != nullptr) {
        out_buffer_high_water_->Set(static_cast<double>(out_high_water_));
      }
    }
    if (result == HandleResult::kClose) {
      conn->close_after_flush = true;
      break;
    }
    if (result == HandleResult::kStopAfterReply) {
      conn->close_after_flush = true;
      stop_after_flush_ = true;
      break;
    }
  }
  if (erased > 0) conn->in.erase(0, erased);
  if (conn->in.size() > options_.max_frame_bytes + 16) {
    // A frame header promised more than we allow buffering.
    decode_errors_.fetch_add(1, std::memory_order_relaxed);
    if (decode_errors_metric_ != nullptr) decode_errors_metric_->Add(1);
    return false;
  }
  return FlushConn(fd, conn);
}

bool NetServer::FlushConn(int fd, Conn* conn) {
  while (conn->out_offset < conn->out.size()) {
    ssize_t n = write(fd, conn->out.data() + conn->out_offset,
                      conn->out.size() - conn->out_offset);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) break;
      return false;
    }
    conn->out_offset += static_cast<size_t>(n);
    if (bytes_out_ != nullptr) bytes_out_->Add(static_cast<uint64_t>(n));
  }
  if (conn->out_offset == conn->out.size()) {
    conn->out.clear();
    conn->out_offset = 0;
  } else if (conn->out_offset > kReadChunk) {
    conn->out.erase(0, conn->out_offset);
    conn->out_offset = 0;
  }
  UpdateWritable(fd, conn);
  return true;
}

void NetServer::UpdateWritable(int fd, Conn* conn) {
  bool want = conn->out_offset < conn->out.size();
  if (want == conn->wants_writable) return;
  conn->wants_writable = want;
  epoll_event ev;
  ev.events = EPOLLIN | (want ? EPOLLOUT : 0u);
  ev.data.fd = fd;
  epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &ev);
}

void NetServer::AccountConnClose(const Conn& conn) {
  // Bytes queued but never written — e.g. a reply pending behind a
  // decode error — would otherwise vanish from the books: bytes_out
  // only counts completed write()s.
  const size_t unflushed = conn.out.size() - conn.out_offset;
  if (unflushed > 0 && bytes_dropped_ != nullptr) {
    bytes_dropped_->Add(static_cast<uint64_t>(unflushed));
  }
  if (conn_lifetime_ms_ != nullptr) {
    conn_lifetime_ms_->Record(std::chrono::duration<double, std::milli>(
                                  std::chrono::steady_clock::now() -
                                  conn.opened)
                                  .count());
  }
  if (conn_frames_ != nullptr) {
    conn_frames_->Record(static_cast<double>(conn.frames));
  }
}

void NetServer::CloseConn(int fd) {
  epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
  close(fd);
  auto it = conns_.find(fd);
  if (it != conns_.end()) {
    AccountConnClose(it->second);
    if (options_.on_close) options_.on_close(it->second.id);
    conns_.erase(it);
  }
  if (active_connections_ != nullptr) {
    active_connections_->Set(static_cast<double>(conns_.size()));
  }
}

void NetServer::CloseAll() {
  for (auto& kv : conns_) {
    close(kv.first);
    AccountConnClose(kv.second);
    if (options_.on_close) options_.on_close(kv.second.id);
  }
  conns_.clear();
  if (active_connections_ != nullptr) active_connections_->Set(0.0);
  if (listen_fd_ >= 0) close(listen_fd_);
  if (epoll_fd_ >= 0) close(epoll_fd_);
  listen_fd_ = epoll_fd_ = -1;
}

}  // namespace net
}  // namespace dynamicc
