#include "net/front_end.h"

#include <algorithm>
#include <filesystem>
#include <utility>

#include "net/rpc.h"
#include "obs/exporter.h"
#include "obs/trace.h"
#include "replication/delta_log.h"
#include "util/timer.h"
#include "util/wire.h"

namespace dynamicc {
namespace net {
namespace {

void ReplyError(const Status& status, std::string* response) {
  response->clear();
  EncodeError(status, response);
}

ResultInfoWire ToWire(const QueryClient::ResultInfo& info) {
  ResultInfoWire wire;
  wire.epoch = info.epoch;
  wire.staleness = info.staleness;
  wire.served = info.served;
  return wire;
}

}  // namespace

ServerFrontEnd::ServerFrontEnd(ShardedDynamicCService* service,
                               const ReadRouter* router, Options options)
    : service_(service), router_(router), options_(std::move(options)) {
  NetServer::Options server_options;
  server_options.host = options_.host;
  server_options.port = options_.port;
  server_options.max_frame_bytes = options_.max_frame_bytes;
  server_options.metrics = options_.metrics;
  server_options.on_close = [this](uint64_t conn_id) {
    std::lock_guard<std::mutex> lock(codec_mu_);
    conn_codec_.erase(conn_id);
  };
  server_ = std::make_unique<NetServer>(
      std::move(server_options),
      [this](uint64_t conn_id, const std::string& request,
             std::string* response) {
        return Handle(conn_id, request, response);
      });
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    ingest_batches_ = reg.GetCounter("net.ingest_batches");
    ingest_ops_ = reg.GetCounter("net.ingest_ops");
    ingest_rejected_ = reg.GetCounter("net.ingest_rejected");
    rpc_queries_ = reg.GetCounter("net.rpc_queries");
    delta_bytes_raw_ = reg.GetCounter("net.delta_bytes_raw");
    delta_bytes_wire_ = reg.GetCounter("net.delta_bytes_wire");
    for (MsgType type :
         {MsgType::kHello, MsgType::kIngest, MsgType::kClusterOf,
          MsgType::kKNearest, MsgType::kStats, MsgType::kReplState,
          MsgType::kFetchDelta, MsgType::kFetchBaseManifest,
          MsgType::kFetchBaseFile, MsgType::kShutdown,
          MsgType::kMetricsScrape, MsgType::kTraceDump, MsgType::kHealth}) {
      const std::string label = std::string("{type=") + MsgTypeName(type) + "}";
      const size_t i = static_cast<uint8_t>(type);
      rpc_ms_[i] = reg.GetHistogram("net.rpc_ms" + label);
      rpc_request_bytes_[i] = reg.GetHistogram("net.rpc_request_bytes" + label);
      rpc_response_bytes_[i] =
          reg.GetHistogram("net.rpc_response_bytes" + label);
    }
  }
}

Status ServerFrontEnd::Start() { return server_->Start(); }

void ServerFrontEnd::Stop() { server_->Stop(); }

void ServerFrontEnd::Join() { server_->Join(); }

Codec ServerFrontEnd::CodecFor(uint64_t conn_id) const {
  std::lock_guard<std::mutex> lock(codec_mu_);
  auto it = conn_codec_.find(conn_id);
  return it != conn_codec_.end() ? it->second : Codec::kRaw;
}

NetServer::HandleResult ServerFrontEnd::Handle(uint64_t conn_id,
                                               const std::string& request,
                                               std::string* response) {
  MsgType type;
  if (!PeekType(request, &type)) {
    ReplyError(Status::InvalidArgument("empty request"), response);
    return NetServer::HandleResult::kClose;
  }
  // Peel the trace-context envelope: the wrapped bytes are a complete
  // request, dispatched as if it had arrived bare. Responses are never
  // wrapped.
  TraceContextWire wire_ctx;
  std::string inner;
  const std::string* body = &request;
  if (type == MsgType::kTraced) {
    if (!DecodeTraced(request, &wire_ctx, &inner) ||
        !PeekType(inner, &type) || type == MsgType::kTraced) {
      ReplyError(Status::InvalidArgument("malformed Traced envelope"),
                 response);
      return NetServer::HandleResult::kClose;
    }
    body = &inner;
  }
  // Install the inbound context as this thread's ambient context, then
  // open the handler span: the span joins the client's trace, and any
  // span the handler opens downstream (ingest.admit, and via the
  // queue-stamped context even the async drain.apply) parents on it.
  obs::TraceContext ctx;
  ctx.trace_id = wire_ctx.trace_id;
  ctx.parent_span_id = wire_ctx.parent_span_id;
  ctx.sampled = wire_ctx.sampled;
  obs::ScopedTraceContext ambient(ctx);
  obs::ScopedSpan rpc_span(options_.tracer, RpcSpanName(type),
                           obs::kServiceShard);

  const size_t t = static_cast<uint8_t>(type);
  NetServer::HandleResult result;
  {
    ScopedTimer timer;
    timer.Record(rpc_ms_[t]);  // null sinks are ignored
    result = Dispatch(conn_id, type, *body, response);
  }
  if (rpc_request_bytes_[t] != nullptr) {
    rpc_request_bytes_[t]->Record(static_cast<double>(body->size()));
  }
  if (rpc_response_bytes_[t] != nullptr) {
    rpc_response_bytes_[t]->Record(static_cast<double>(response->size()));
  }
  return result;
}

NetServer::HandleResult ServerFrontEnd::Dispatch(uint64_t conn_id,
                                                 MsgType type,
                                                 const std::string& request,
                                                 std::string* response) {
  switch (type) {
    case MsgType::kHello:
      HandleHello(conn_id, request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kIngest:
      HandleIngest(request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kClusterOf:
      HandleClusterOf(request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kKNearest:
      HandleKNearest(request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kStats:
      HandleStats(request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kReplState:
      HandleReplState(response);
      return NetServer::HandleResult::kReply;
    case MsgType::kFetchDelta:
      HandleFetchDelta(conn_id, request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kFetchBaseManifest:
      HandleFetchBaseManifest(request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kFetchBaseFile:
      HandleFetchBaseFile(conn_id, request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kMetricsScrape:
      HandleMetricsScrape(request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kTraceDump:
      HandleTraceDump(request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kHealth:
      HandleHealth(request, response);
      return NetServer::HandleResult::kReply;
    case MsgType::kShutdown:
      EncodeShutdownOk(response);
      return NetServer::HandleResult::kStopAfterReply;
    default:
      ReplyError(
          Status::InvalidArgument("unexpected message type " +
                                  std::to_string(static_cast<int>(type))),
          response);
      return NetServer::HandleResult::kClose;
  }
}

void ServerFrontEnd::HandleHello(uint64_t conn_id, const std::string& request,
                                 std::string* response) {
  HelloRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed Hello"), response);
    return;
  }
  if (req.protocol_version != kProtocolVersion) {
    ReplyError(Status::InvalidArgument(
                   "protocol version mismatch: theirs " +
                   std::to_string(req.protocol_version) + ", ours " +
                   std::to_string(kProtocolVersion)),
               response);
    return;
  }
  HelloResponse resp;
  resp.codec = NegotiateCodec(kSupportedCodecs, req.codec_mask);
  resp.feature_mask = req.feature_mask & kSupportedFeatures;
  {
    std::lock_guard<std::mutex> lock(codec_mu_);
    conn_codec_[conn_id] = resp.codec;
  }
  Encode(resp, response);
}

void ServerFrontEnd::HandleMetricsScrape(const std::string& request,
                                         std::string* response) {
  MetricsScrapeRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed MetricsScrape"), response);
    return;
  }
  obs::MetricsRegistry* registry = options_.scrape_registry != nullptr
                                       ? options_.scrape_registry
                                       : options_.metrics;
  if (registry == nullptr) {
    ReplyError(Status::InvalidArgument("no metrics registry attached"),
               response);
    return;
  }
  MetricsScrapeResponse resp;
  resp.text = obs::RenderMetricsPrometheus(registry->Snapshot());
  Encode(resp, response);
}

void ServerFrontEnd::HandleTraceDump(const std::string& request,
                                     std::string* response) {
  TraceDumpRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed TraceDump"), response);
    return;
  }
  if (options_.tracer == nullptr) {
    ReplyError(Status::InvalidArgument("no tracer attached"), response);
    return;
  }
  TraceDumpResponse resp;
  resp.json = obs::RenderChromeTrace(*options_.tracer);
  Encode(resp, response);
}

void ServerFrontEnd::HandleHealth(const std::string& request,
                                  std::string* response) {
  HealthRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed Health"), response);
    return;
  }
  HealthResponse resp;
  // Without a watchdog nothing is watching, so nothing is breached;
  // fleets that want meaningful health attach one (CLI --watchdog).
  if (options_.watchdog != nullptr) {
    resp.alerts = options_.watchdog->ActiveAlerts();
    resp.alerts_active = resp.alerts.size();
    resp.ok = resp.alerts.empty();
  }
  Encode(resp, response);
}

void ServerFrontEnd::HandleIngest(const std::string& request,
                                  std::string* response) {
  if (service_ == nullptr) {
    ReplyError(Status::InvalidArgument("this server does not ingest"),
               response);
    return;
  }
  IngestRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed Ingest"), response);
    return;
  }
  ShardedDynamicCService::IngestResult result = service_->Ingest(req.ops);
  IngestResponse resp;
  resp.accepted = result.accepted;
  resp.ids.assign(result.changed.begin(), result.changed.end());
  if (ingest_batches_ != nullptr) ingest_batches_->Add(1);
  if (ingest_ops_ != nullptr) ingest_ops_->Add(req.ops.size());
  if (!result.accepted && ingest_rejected_ != nullptr) {
    ingest_rejected_->Add(1);
  }
  Encode(resp, response);
}

void ServerFrontEnd::HandleClusterOf(const std::string& request,
                                     std::string* response) {
  ClusterOfRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed ClusterOf"), response);
    return;
  }
  if (rpc_queries_ != nullptr) rpc_queries_->Add(1);
  QueryClient::ClusterOfResult result;
  if (router_ != nullptr) {
    result = router_->ClusterOfRecord(static_cast<ObjectId>(req.global_id),
                                      req.max_staleness);
  } else if (service_ != nullptr && service_->serves_reads()) {
    result = QueryClient(service_).ClusterOfRecord(
        static_cast<ObjectId>(req.global_id));
  } else {
    ReplyError(Status::InvalidArgument("this server does not serve reads"),
               response);
    return;
  }
  ClusterOfResponse resp;
  resp.info = ToWire(result.info);
  resp.members.assign(result.members.begin(), result.members.end());
  resp.avg_intra = result.avg_intra;
  Encode(resp, response);
}

void ServerFrontEnd::HandleKNearest(const std::string& request,
                                    std::string* response) {
  KNearestRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed KNearest"), response);
    return;
  }
  if (rpc_queries_ != nullptr) rpc_queries_->Add(1);
  QueryClient::NearestResult result;
  if (router_ != nullptr) {
    result = router_->KNearestClusters(req.probe, static_cast<size_t>(req.k),
                                       req.max_staleness);
  } else if (service_ != nullptr && service_->serves_reads()) {
    result =
        QueryClient(service_).KNearestClusters(req.probe,
                                               static_cast<size_t>(req.k));
  } else {
    ReplyError(Status::InvalidArgument("this server does not serve reads"),
               response);
    return;
  }
  KNearestResponse resp;
  resp.info = ToWire(result.info);
  resp.hits.reserve(result.hits.size());
  for (const QueryClient::NearestResult::Hit& hit : result.hits) {
    KNearestResponse::Hit out;
    out.members.assign(hit.members.begin(), hit.members.end());
    out.similarity = hit.similarity;
    out.avg_intra = hit.avg_intra;
    resp.hits.push_back(std::move(out));
  }
  Encode(resp, response);
}

void ServerFrontEnd::HandleStats(const std::string& request,
                                 std::string* response) {
  StatsRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed Stats"), response);
    return;
  }
  if (rpc_queries_ != nullptr) rpc_queries_->Add(1);
  QueryClient::StatsResult result;
  if (router_ != nullptr) {
    result = router_->Stats(req.max_staleness);
  } else if (service_ != nullptr && service_->serves_reads()) {
    result = QueryClient(service_).Stats();
  } else {
    ReplyError(Status::InvalidArgument("this server does not serve reads"),
               response);
    return;
  }
  StatsResponse resp;
  resp.info = ToWire(result.info);
  resp.objects = result.stats.objects;
  resp.clusters = result.stats.clusters;
  resp.total_intra_sum = result.stats.total_intra_sum;
  Encode(resp, response);
}

void ServerFrontEnd::HandleReplState(std::string* response) {
  if (options_.replication_dir.empty()) {
    ReplyError(Status::InvalidArgument("no replication stream here"),
               response);
    return;
  }
  DeltaLog log(options_.replication_dir);
  DeltaLog::State state;
  Status status = log.List(&state);
  if (!status.ok()) {
    // A follower may dial in before the primary has published anything
    // (the replication session starts at the training -> serving
    // transition). A missing directory is "stream not started yet", an
    // empty state the client polls against — not an error that would
    // burn its reconnect budget.
    if (!status.IsNotFound()) {
      ReplyError(status, response);
      return;
    }
    state = DeltaLog::State{};
  }
  ReplStateResponse resp;
  resp.stream_done = stream_done_.load(std::memory_order_acquire);
  resp.base_epochs = std::move(state.bases);
  resp.delta_epochs = std::move(state.deltas);
  Encode(resp, response);
}

Status ServerFrontEnd::EncodeFileBlock(uint64_t conn_id,
                                       const std::string& path,
                                       MsgType ok_type,
                                       std::string* response) {
  std::string bytes;
  Status status = ReadFileBytes(path, &bytes);
  if (!status.ok()) return status;
  BlockResponse resp;
  EncodeBlock(CodecFor(conn_id), bytes, &resp.block);
  if (delta_bytes_raw_ != nullptr) delta_bytes_raw_->Add(bytes.size());
  if (delta_bytes_wire_ != nullptr) delta_bytes_wire_->Add(resp.block.size());
  Encode(ok_type, resp, response);
  return Status::Ok();
}

void ServerFrontEnd::HandleFetchDelta(uint64_t conn_id,
                                      const std::string& request,
                                      std::string* response) {
  FetchDeltaRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed FetchDelta"), response);
    return;
  }
  if (options_.replication_dir.empty()) {
    ReplyError(Status::InvalidArgument("no replication stream here"),
               response);
    return;
  }
  DeltaLog log(options_.replication_dir);
  Status status = EncodeFileBlock(conn_id, log.DeltaPathFor(req.epoch),
                                  MsgType::kFetchDeltaOk, response);
  if (!status.ok()) ReplyError(status, response);
}

void ServerFrontEnd::HandleFetchBaseManifest(const std::string& request,
                                             std::string* response) {
  FetchBaseManifestRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed FetchBaseManifest"),
               response);
    return;
  }
  if (options_.replication_dir.empty()) {
    ReplyError(Status::InvalidArgument("no replication stream here"),
               response);
    return;
  }
  DeltaLog log(options_.replication_dir);
  std::string dir = log.BaseDirFor(req.epoch);
  std::error_code ec;
  FetchBaseManifestResponse resp;
  // Snapshot directories are flat: every entry is a regular file.
  for (const auto& entry : std::filesystem::directory_iterator(dir, ec)) {
    if (entry.is_regular_file()) {
      resp.files.push_back(entry.path().filename().string());
    }
  }
  if (ec) {
    ReplyError(Status::IoError("cannot list " + dir + ": " + ec.message()),
               response);
    return;
  }
  std::sort(resp.files.begin(), resp.files.end());
  Encode(resp, response);
}

void ServerFrontEnd::HandleFetchBaseFile(uint64_t conn_id,
                                         const std::string& request,
                                         std::string* response) {
  FetchBaseFileRequest req;
  if (!Decode(request, &req)) {
    ReplyError(Status::InvalidArgument("malformed FetchBaseFile"), response);
    return;
  }
  if (options_.replication_dir.empty()) {
    ReplyError(Status::InvalidArgument("no replication stream here"),
               response);
    return;
  }
  // Reject anything that could escape the base directory.
  if (req.name.empty() || req.name.find('/') != std::string::npos ||
      req.name.find("..") != std::string::npos) {
    ReplyError(Status::InvalidArgument("bad base file name: " + req.name),
               response);
    return;
  }
  DeltaLog log(options_.replication_dir);
  std::string path = JoinPath(log.BaseDirFor(req.epoch), req.name);
  Status status =
      EncodeFileBlock(conn_id, path, MsgType::kFetchBaseFileOk, response);
  if (!status.ok()) ReplyError(status, response);
}

}  // namespace net
}  // namespace dynamicc
