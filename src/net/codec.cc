#include "net/codec.h"

#include <algorithm>
#include <cstring>
#include <vector>

#include "net/wire_format.h"
#include "service/snapshot.h"

namespace dynamicc {
namespace net {
namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxOffset = 65535;
constexpr int kHashBits = 13;

inline uint32_t HashFour(const char* p) {
  uint32_t v;
  std::memcpy(&v, p, sizeof(v));
  // Fibonacci hashing spreads the low bytes that dominate ASCII text.
  return (v * 2654435761u) >> (32 - kHashBits);
}

inline void PutU64Le(std::string* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out->push_back(static_cast<char>(v >> (8 * i)));
}

inline bool GetU64Le(BinaryReader* r, uint64_t* v) {
  *v = 0;
  for (int i = 0; i < 8; ++i) {
    uint8_t b;
    if (!r->GetU8(&b)) return false;
    *v |= static_cast<uint64_t>(b) << (8 * i);
  }
  return true;
}

// Emits an LZ4-style length: the nibble already holds min(len, 15);
// values >= 15 continue in 255-valued extension bytes.
inline void PutLength(std::string* out, size_t len) {
  if (len < 15) return;
  len -= 15;
  while (len >= 255) {
    out->push_back(static_cast<char>(0xff));
    len -= 255;
  }
  out->push_back(static_cast<char>(len));
}

inline bool GetLength(const char* data, size_t size, size_t* pos,
                      size_t nibble, size_t* len) {
  *len = nibble;
  if (nibble != 15) return true;
  while (true) {
    if (*pos >= size) return false;
    uint8_t b = static_cast<uint8_t>(data[(*pos)++]);
    *len += b;
    if (*len > kMaxFrameBytes) return false;  // runaway extension
    if (b != 255) return true;
  }
}

}  // namespace

Codec NegotiateCodec(uint64_t ours, uint64_t theirs) {
  uint64_t common = ours & theirs & kSupportedCodecs;
  if (common & (1u << static_cast<int>(Codec::kLzb))) return Codec::kLzb;
  return Codec::kRaw;
}

void CompressLzb(const std::string& raw, std::string* out) {
  out->clear();
  const char* data = raw.data();
  const size_t size = raw.size();
  if (size < kMinMatch + 1) {
    // Too short to ever find a match: a single literal-only sequence.
    out->push_back(static_cast<char>(std::min<size_t>(size, 15) << 4));
    PutLength(out, size);
    out->append(data, size);
    return;
  }

  std::vector<uint32_t> table(1u << kHashBits, 0);
  std::vector<bool> filled(1u << kHashBits, false);
  size_t pos = 0;
  size_t literal_start = 0;
  // Stop the match search early enough that the final sequence always
  // ends in literals (decoder relies on that to terminate cleanly).
  const size_t match_limit = size - kMinMatch;

  while (pos <= match_limit) {
    uint32_t h = HashFour(data + pos);
    size_t candidate = table[h];
    bool usable = filled[h] && pos - candidate <= kMaxOffset &&
                  std::memcmp(data + candidate, data + pos, kMinMatch) == 0;
    table[h] = static_cast<uint32_t>(pos);
    filled[h] = true;
    if (!usable) {
      ++pos;
      continue;
    }
    // Extend the match, but never through the final literal tail.
    size_t max_len = size - 1 - pos;
    size_t len = kMinMatch;
    while (len < max_len && data[candidate + len] == data[pos + len]) ++len;

    size_t literals = pos - literal_start;
    size_t match_code = len - kMinMatch;
    uint8_t token =
        static_cast<uint8_t>(std::min<size_t>(literals, 15) << 4 |
                             std::min<size_t>(match_code, 15));
    out->push_back(static_cast<char>(token));
    PutLength(out, literals);
    out->append(data + literal_start, literals);
    size_t offset = pos - candidate;
    out->push_back(static_cast<char>(offset & 0xff));
    out->push_back(static_cast<char>(offset >> 8));
    PutLength(out, match_code);
    pos += len;
    literal_start = pos;
  }

  // Final literal-only sequence (may be empty if a match ran to the
  // end; the decoder terminates on input exhaustion either way).
  size_t literals = size - literal_start;
  out->push_back(static_cast<char>(std::min<size_t>(literals, 15) << 4));
  PutLength(out, literals);
  out->append(data + literal_start, literals);
}

bool DecompressLzb(const char* data, size_t size, size_t raw_size,
                   std::string* out) {
  out->clear();
  out->reserve(raw_size);
  size_t pos = 0;
  while (pos < size) {
    uint8_t token = static_cast<uint8_t>(data[pos++]);
    size_t literals;
    if (!GetLength(data, size, &pos, token >> 4, &literals)) return false;
    if (literals > size - pos) return false;
    if (literals > raw_size - out->size()) return false;
    out->append(data + pos, literals);
    pos += literals;
    if (pos == size) break;  // final sequence: literals only, no match
    if (size - pos < 2) return false;
    size_t offset = static_cast<uint8_t>(data[pos]) |
                    static_cast<size_t>(static_cast<uint8_t>(data[pos + 1]))
                        << 8;
    pos += 2;
    if (offset == 0 || offset > out->size()) return false;
    size_t match_code;
    if (!GetLength(data, size, &pos, token & 0x0f, &match_code)) return false;
    size_t len = match_code + kMinMatch;
    if (len > raw_size - out->size()) return false;
    // Byte-at-a-time copy: matches may overlap their own output.
    size_t from = out->size() - offset;
    for (size_t i = 0; i < len; ++i) out->push_back((*out)[from + i]);
  }
  return out->size() == raw_size;
}

void EncodeBlock(Codec codec, const std::string& raw, std::string* out) {
  std::string body;
  if (codec == Codec::kLzb) {
    CompressLzb(raw, &body);
    if (body.size() >= raw.size()) codec = Codec::kRaw;
  }
  out->push_back(static_cast<char>(codec));
  PutVarint(out, raw.size());
  PutU64Le(out, SnapshotChecksum(raw));
  if (codec == Codec::kRaw) {
    out->append(raw);
  } else {
    out->append(body);
  }
}

bool DecodeBlock(const std::string& block, uint64_t max_raw_bytes,
                 std::string* raw) {
  BinaryReader r(block);
  uint8_t codec_byte;
  uint64_t raw_size, checksum;
  if (!r.GetU8(&codec_byte)) return false;
  if (!r.GetVar(&raw_size)) return false;
  if (raw_size > max_raw_bytes) return false;
  if (!GetU64Le(&r, &checksum)) return false;
  if (codec_byte == static_cast<uint8_t>(Codec::kRaw)) {
    if (r.remaining() != raw_size) return false;
    raw->assign(r.cursor(), r.remaining());
  } else if (codec_byte == static_cast<uint8_t>(Codec::kLzb)) {
    if (!DecompressLzb(r.cursor(), r.remaining(),
                       static_cast<size_t>(raw_size), raw)) {
      return false;
    }
  } else {
    return false;
  }
  return SnapshotChecksum(*raw) == checksum;
}

}  // namespace net
}  // namespace dynamicc
