// Thin POSIX socket helpers shared by the server event loop and the
// blocking client. IPv4 localhost-oriented (the deployment unit is a
// rack, not the internet); all functions report failure via Status or
// a negative fd, never exceptions.
#ifndef DYNAMICC_NET_SOCKET_H_
#define DYNAMICC_NET_SOCKET_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace dynamicc {
namespace net {

// Creates a listening TCP socket bound to |host|:|port| (port 0 picks
// an ephemeral port). On success returns the fd and stores the bound
// port in |bound_port|. SO_REUSEADDR is set; the socket is
// non-blocking.
Status ListenTcp(const std::string& host, uint16_t port, int* fd,
                 uint16_t* bound_port);

// Blocking connect to |host|:|port| with TCP_NODELAY set (latency
// over Nagle; the wire layer does its own coalescing).
Status ConnectTcp(const std::string& host, uint16_t port, int* fd);

Status SetNonBlocking(int fd);
void SetNoDelay(int fd);

// Sets SO_RCVTIMEO/SO_SNDTIMEO so a wedged peer surfaces as an error
// instead of hanging a client thread forever. 0 = no timeout.
void SetIoTimeout(int fd, int timeout_ms);

// Parses "host:port" (host defaults to 127.0.0.1 when absent).
Status ParseHostPort(const std::string& spec, std::string* host,
                     uint16_t* port);

// Blocking framed connection used by clients: frames are
// varint-length-prefixed as in wire_format.h. Owns the fd.
class FramedSocket {
 public:
  FramedSocket() = default;
  ~FramedSocket() { Close(); }
  FramedSocket(const FramedSocket&) = delete;
  FramedSocket& operator=(const FramedSocket&) = delete;

  Status Connect(const std::string& host, uint16_t port, int timeout_ms);
  void Close();
  bool connected() const { return fd_ >= 0; }

  // Writes varint(payload.size()) || payload, handling partial writes.
  Status SendFrame(const std::string& payload);
  // Reads one full frame (blocking). Fails on EOF, timeout, or a
  // frame larger than |max_frame_bytes|.
  Status RecvFrame(uint64_t max_frame_bytes, std::string* payload);

  uint64_t bytes_sent() const { return bytes_sent_; }
  uint64_t bytes_received() const { return bytes_received_; }

 private:
  int fd_ = -1;
  uint64_t bytes_sent_ = 0;
  uint64_t bytes_received_ = 0;
};

}  // namespace net
}  // namespace dynamicc

#endif  // DYNAMICC_NET_SOCKET_H_
