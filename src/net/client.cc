#include "net/client.h"

#include <utility>

namespace dynamicc {
namespace net {

Status NetClient::Connect() {
  Status status =
      socket_.Connect(options_.host, options_.port, options_.io_timeout_ms);
  if (!status.ok()) return status;
  HelloRequest hello;
  hello.codec_mask = options_.codec_mask;
  std::string request, response;
  Encode(hello, &request);
  status = Call(request, &response);
  if (!status.ok()) {
    socket_.Close();
    return status;
  }
  HelloResponse ok;
  if (!Decode(response, &ok)) {
    socket_.Close();
    return Status::IoError("malformed Hello response");
  }
  codec_ = ok.codec;
  return Status::Ok();
}

Status NetClient::Call(const std::string& request, std::string* response) {
  Status status = socket_.SendFrame(request);
  if (!status.ok()) return status;
  status = socket_.RecvFrame(options_.max_frame_bytes, response);
  if (!status.ok()) return status;
  MsgType type;
  if (!PeekType(*response, &type)) {
    return Status::IoError("empty response payload");
  }
  if (type == MsgType::kError) return DecodeError(*response);
  return Status::Ok();
}

Status NetClient::Ingest(const OperationBatch& ops,
                         IngestResponse* response) {
  IngestRequest req;
  req.ops = ops;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed Ingest response");
  }
  return Status::Ok();
}

Status NetClient::QueueOp(const DataOperation& op, IngestResponse* response,
                          bool* flushed) {
  pending_.push_back(op);
  if (pending_.size() < options_.coalesce_ops) {
    *flushed = false;
    return Status::Ok();
  }
  *flushed = true;
  return FlushOps(response);
}

Status NetClient::FlushOps(IngestResponse* response) {
  if (pending_.empty()) {
    response->accepted = true;
    response->ids.clear();
    return Status::Ok();
  }
  OperationBatch batch;
  batch.swap(pending_);
  Status status = Ingest(batch, response);
  if (!status.ok()) return status;
  if (!response->accepted) {
    // Rejected batches assign nothing; hand the ops back so the caller
    // can retry the same batch after backoff.
    pending_ = std::move(batch);
  }
  return Status::Ok();
}

Status NetClient::ClusterOf(uint64_t global_id, uint64_t max_staleness,
                            ClusterOfResponse* response) {
  ClusterOfRequest req;
  req.global_id = global_id;
  req.max_staleness = max_staleness;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed ClusterOf response");
  }
  return Status::Ok();
}

Status NetClient::KNearest(const Record& probe, uint64_t k,
                           uint64_t max_staleness,
                           KNearestResponse* response) {
  KNearestRequest req;
  req.probe = probe;
  req.k = k;
  req.max_staleness = max_staleness;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed KNearest response");
  }
  return Status::Ok();
}

Status NetClient::Stats(uint64_t max_staleness, StatsResponse* response) {
  StatsRequest req;
  req.max_staleness = max_staleness;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed Stats response");
  }
  return Status::Ok();
}

Status NetClient::ReplState(ReplStateResponse* response) {
  std::string request, payload;
  Encode(ReplStateRequest{}, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed ReplState response");
  }
  return Status::Ok();
}

Status NetClient::FetchBlock(const std::string& request, std::string* raw) {
  std::string payload;
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  BlockResponse block;
  if (!Decode(payload, &block)) {
    return Status::IoError("malformed block response");
  }
  if (!DecodeBlock(block.block, options_.max_frame_bytes, raw)) {
    return Status::IoError("corrupt compressed block");
  }
  return Status::Ok();
}

Status NetClient::FetchDelta(uint64_t epoch, std::string* raw) {
  FetchDeltaRequest req;
  req.epoch = epoch;
  std::string request;
  Encode(req, &request);
  return FetchBlock(request, raw);
}

Status NetClient::FetchBaseManifest(uint64_t epoch,
                                    FetchBaseManifestResponse* response) {
  FetchBaseManifestRequest req;
  req.epoch = epoch;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed FetchBaseManifest response");
  }
  return Status::Ok();
}

Status NetClient::FetchBaseFile(uint64_t epoch, const std::string& name,
                                std::string* raw) {
  FetchBaseFileRequest req;
  req.epoch = epoch;
  req.name = name;
  std::string request;
  Encode(req, &request);
  return FetchBlock(request, raw);
}

Status NetClient::Shutdown() {
  std::string request, payload;
  EncodeShutdown(&request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  MsgType type;
  if (!PeekType(payload, &type) || type != MsgType::kShutdownOk) {
    return Status::IoError("malformed Shutdown response");
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace dynamicc
