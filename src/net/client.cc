#include "net/client.h"

#include <utility>

#include "util/timer.h"

namespace dynamicc {
namespace net {

Status NetClient::Connect() {
  Status status =
      socket_.Connect(options_.host, options_.port, options_.io_timeout_ms);
  if (!status.ok()) return status;
  HelloRequest hello;
  hello.codec_mask = options_.codec_mask;
  // Only a tracing client sends the optional feature field: a bare
  // Hello stays byte-identical to the pre-feature wire format, so old
  // servers keep accepting non-tracing clients.
  if (options_.tracer != nullptr) hello.feature_mask = kFeatureTraceContext;
  std::string request, response;
  Encode(hello, &request);
  status = Call(request, &response);
  if (!status.ok()) {
    socket_.Close();
    return status;
  }
  HelloResponse ok;
  if (!Decode(response, &ok)) {
    socket_.Close();
    return Status::IoError("malformed Hello response");
  }
  codec_ = ok.codec;
  server_features_ = ok.feature_mask;
  return Status::Ok();
}

obs::Histogram* NetClient::RpcHistogram(MsgType type) {
  if (options_.metrics == nullptr) return nullptr;
  const size_t i = static_cast<uint8_t>(type);
  if (rpc_ms_[i] == nullptr) {
    rpc_ms_[i] = options_.metrics->GetHistogram(
        std::string("net.client.rpc_ms{type=") + MsgTypeName(type) + "}");
  }
  return rpc_ms_[i];
}

Status NetClient::Call(const std::string& request, std::string* response) {
  MsgType type = MsgType::kError;
  PeekType(request, &type);
  ScopedTimer timer;
  timer.Record(RpcHistogram(type));  // null sinks are ignored
  if (!tracing_enabled() || type == MsgType::kHello) {
    return CallRaw(request, response);
  }
  // Originate a fresh trace per call, or join the thread's ambient
  // context if the caller is already inside one.
  obs::TraceContext ctx = obs::CurrentTraceContext();
  if (!ctx.active()) {
    ctx.trace_id = obs::NextTraceId();
    ctx.parent_span_id = 0;
    ctx.sampled = true;
  }
  obs::ScopedTraceContext ambient(ctx);
  obs::ScopedSpan span(options_.tracer, obs::kSpanRpcClient,
                       obs::kServiceShard);
  // The span advanced the ambient parent to itself; the server's
  // handler span becomes its child.
  const obs::TraceContext current = obs::CurrentTraceContext();
  TraceContextWire wire_ctx;
  wire_ctx.trace_id = current.trace_id;
  wire_ctx.parent_span_id = current.parent_span_id;
  wire_ctx.sampled = current.sampled;
  last_trace_id_ = current.trace_id;
  std::string traced;
  traced.reserve(request.size() + 24);
  EncodeTraced(wire_ctx, request, &traced);
  return CallRaw(traced, response);
}

Status NetClient::CallRaw(const std::string& request, std::string* response) {
  Status status = socket_.SendFrame(request);
  if (!status.ok()) return status;
  status = socket_.RecvFrame(options_.max_frame_bytes, response);
  if (!status.ok()) return status;
  MsgType type;
  if (!PeekType(*response, &type)) {
    return Status::IoError("empty response payload");
  }
  if (type == MsgType::kError) return DecodeError(*response);
  return Status::Ok();
}

Status NetClient::Ingest(const OperationBatch& ops,
                         IngestResponse* response) {
  IngestRequest req;
  req.ops = ops;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed Ingest response");
  }
  return Status::Ok();
}

Status NetClient::QueueOp(const DataOperation& op, IngestResponse* response,
                          bool* flushed) {
  pending_.push_back(op);
  if (pending_.size() < options_.coalesce_ops) {
    *flushed = false;
    return Status::Ok();
  }
  *flushed = true;
  return FlushOps(response);
}

Status NetClient::FlushOps(IngestResponse* response) {
  if (pending_.empty()) {
    response->accepted = true;
    response->ids.clear();
    return Status::Ok();
  }
  OperationBatch batch;
  batch.swap(pending_);
  Status status = Ingest(batch, response);
  if (!status.ok()) return status;
  if (!response->accepted) {
    // Rejected batches assign nothing; hand the ops back so the caller
    // can retry the same batch after backoff.
    pending_ = std::move(batch);
  }
  return Status::Ok();
}

Status NetClient::ClusterOf(uint64_t global_id, uint64_t max_staleness,
                            ClusterOfResponse* response) {
  ClusterOfRequest req;
  req.global_id = global_id;
  req.max_staleness = max_staleness;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed ClusterOf response");
  }
  return Status::Ok();
}

Status NetClient::KNearest(const Record& probe, uint64_t k,
                           uint64_t max_staleness,
                           KNearestResponse* response) {
  KNearestRequest req;
  req.probe = probe;
  req.k = k;
  req.max_staleness = max_staleness;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed KNearest response");
  }
  return Status::Ok();
}

Status NetClient::Stats(uint64_t max_staleness, StatsResponse* response) {
  StatsRequest req;
  req.max_staleness = max_staleness;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed Stats response");
  }
  return Status::Ok();
}

Status NetClient::ReplState(ReplStateResponse* response) {
  std::string request, payload;
  Encode(ReplStateRequest{}, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed ReplState response");
  }
  return Status::Ok();
}

Status NetClient::FetchBlock(const std::string& request, std::string* raw) {
  std::string payload;
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  BlockResponse block;
  if (!Decode(payload, &block)) {
    return Status::IoError("malformed block response");
  }
  if (!DecodeBlock(block.block, options_.max_frame_bytes, raw)) {
    return Status::IoError("corrupt compressed block");
  }
  return Status::Ok();
}

Status NetClient::FetchDelta(uint64_t epoch, std::string* raw) {
  FetchDeltaRequest req;
  req.epoch = epoch;
  std::string request;
  Encode(req, &request);
  return FetchBlock(request, raw);
}

Status NetClient::FetchBaseManifest(uint64_t epoch,
                                    FetchBaseManifestResponse* response) {
  FetchBaseManifestRequest req;
  req.epoch = epoch;
  std::string request, payload;
  Encode(req, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed FetchBaseManifest response");
  }
  return Status::Ok();
}

Status NetClient::FetchBaseFile(uint64_t epoch, const std::string& name,
                                std::string* raw) {
  FetchBaseFileRequest req;
  req.epoch = epoch;
  req.name = name;
  std::string request;
  Encode(req, &request);
  return FetchBlock(request, raw);
}

Status NetClient::MetricsScrape(std::string* text) {
  std::string request, payload;
  Encode(MetricsScrapeRequest{}, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  MetricsScrapeResponse resp;
  if (!Decode(payload, &resp)) {
    return Status::IoError("malformed MetricsScrape response");
  }
  *text = std::move(resp.text);
  return Status::Ok();
}

Status NetClient::TraceDump(std::string* json) {
  std::string request, payload;
  Encode(TraceDumpRequest{}, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  TraceDumpResponse resp;
  if (!Decode(payload, &resp)) {
    return Status::IoError("malformed TraceDump response");
  }
  *json = std::move(resp.json);
  return Status::Ok();
}

Status NetClient::Health(HealthResponse* response) {
  std::string request, payload;
  Encode(HealthRequest{}, &request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  if (!Decode(payload, response)) {
    return Status::IoError("malformed Health response");
  }
  return Status::Ok();
}

Status NetClient::Shutdown() {
  std::string request, payload;
  EncodeShutdown(&request);
  Status status = Call(request, &payload);
  if (!status.ok()) return status;
  MsgType type;
  if (!PeekType(payload, &type) || type != MsgType::kShutdownOk) {
    return Status::IoError("malformed Shutdown response");
  }
  return Status::Ok();
}

}  // namespace net
}  // namespace dynamicc
