#ifndef DYNAMICC_CORE_MERGE_ALGORITHM_H_
#define DYNAMICC_CORE_MERGE_ALGORITHM_H_

#include <cstddef>
#include <cstdint>
#include <unordered_set>

#include "cluster/engine.h"
#include "cluster/evolution.h"
#include "ml/model.h"
#include "ml/sample.h"
#include "objective/objective.h"

namespace dynamicc {

/// Outcome counters of one merge/split pass (also used by SplitAlgorithm).
struct PassStats {
  bool changed = false;
  /// Clusters the model flagged (P >= theta).
  size_t predicted = 0;
  /// Changes applied after verification.
  size_t applied = 0;
  /// Predictions rejected by the validator (false positives avoided).
  size_t rejected = 0;
  /// Model probability evaluations performed (efficiency proxy).
  size_t probability_evaluations = 0;
};

/// Memo of rejected verifications, keyed by the cluster versions involved.
/// Algorithm 3 alternates merge/split passes until a fixpoint; without the
/// memo, every pass would re-verify the same unchanged clusters with the
/// (expensive) objective delta. Entries are invalidated for free: any
/// membership change bumps the cluster version and produces a new key.
using VerificationMemo = std::unordered_set<uint64_t>;

/// Memo key for a single-cluster decision (split) or a pair (merge).
inline uint64_t MemoKey(ClusterId cluster, uint64_t version) {
  return (static_cast<uint64_t>(cluster) << 40) ^ version;
}
inline uint64_t MemoKey(ClusterId a, uint64_t version_a, ClusterId b,
                        uint64_t version_b) {
  return MemoKey(a, version_a) * 0x9E3779B97F4A7C15ull ^
         MemoKey(b, version_b);
}

/// Algorithm 1 — the Merge algorithm. The Merge model flags candidate
/// clusters; each flagged cluster is paired with the flagged inter-neighbor
/// whose hypothetical merged cluster minimizes P(C_new = 1) (the most
/// *stable* result, §6.2); the pair is merged only if the validator
/// (objective function, §5.4) confirms an improvement.
class MergeAlgorithm {
 public:
  struct Options {
    /// Restrict partner candidates to clusters also predicted "merge" —
    /// the §6.2 search-space reduction. Disable for the A5 ablation.
    bool restrict_partners_to_predicted = true;
    /// When the restriction leaves no candidate, fall back to all inter
    /// neighbors instead of dropping the cluster. Off by default: the
    /// fallback admits borderline merges into established clusters that
    /// near-tie objective deltas then accept, and the errors accumulate
    /// (measured in ablation A5).
    bool fallback_to_all_partners = false;
    /// Cap on partner candidates examined per cluster (0 = no cap).
    size_t max_partner_checks = 0;
    /// How many partners (in ascending P(C_new = 1) order) to *verify*
    /// before dropping the cluster. The paper checks exactly the argmin
    /// partner (= 1); a small budget recovers merges whose first-choice
    /// partner fails verification while the runner-up would pass.
    size_t verification_budget = 3;
    /// When set, partners are ranked by this objective's MergeDelta instead
    /// of the model's P(C_new = 1). Use for objectives with O(1)-ish deltas
    /// (k-means) where "which partner" is a geometric question the
    /// similarity features cannot answer — the paper's heuristics likewise
    /// use the objective function to turn general decisions into specific
    /// actions (§2.1). Leave null for expensive-delta objectives.
    const ObjectiveFunction* partner_ranking_objective = nullptr;
    /// Process flagged clusters most-confident-first instead of in plain
    /// queue order; high-confidence merges then shape the clustering
    /// before borderline ones are considered.
    bool order_by_probability = true;
  };

  MergeAlgorithm(const BinaryClassifier* model,
                 const ChangeValidator* validator);
  MergeAlgorithm(const BinaryClassifier* model,
                 const ChangeValidator* validator, Options options);

  /// Runs one pass over the engine's clusters with decision threshold
  /// `theta`. `feedback` (optional) receives verified outcomes as labelled
  /// samples for continuous retraining; `observer` (optional) sees applied
  /// merges; `memo` (optional) suppresses re-verification of pairs already
  /// rejected at the same cluster versions.
  PassStats Run(ClusteringEngine* engine, double theta,
                SampleSet* feedback = nullptr,
                EvolutionObserver* observer = nullptr,
                VerificationMemo* memo = nullptr) const;

 private:
  const BinaryClassifier* model_;
  const ChangeValidator* validator_;
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CORE_MERGE_ALGORITHM_H_
