#include "core/merge_algorithm.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/features.h"
#include "util/logging.h"

namespace dynamicc {

MergeAlgorithm::MergeAlgorithm(const BinaryClassifier* model,
                               const ChangeValidator* validator)
    : MergeAlgorithm(model, validator, Options{}) {}

MergeAlgorithm::MergeAlgorithm(const BinaryClassifier* model,
                               const ChangeValidator* validator,
                               Options options)
    : model_(model), validator_(validator), options_(options) {
  DYNAMICC_CHECK(model != nullptr);
  DYNAMICC_CHECK(validator != nullptr);
}

PassStats MergeAlgorithm::Run(ClusteringEngine* engine, double theta,
                              SampleSet* feedback,
                              EvolutionObserver* observer,
                              VerificationMemo* memo) const {
  PassStats stats;
  // No evolution of this kind observed yet: predict nothing rather than
  // guess (the model gets fitted once the trainer sees merge steps).
  if (!model_->is_fitted()) return stats;

  const Clustering& clustering = engine->clustering();

  // Line 2: Cl_merge <- clusters predicted 1 by the merge model.
  std::vector<std::pair<double, ClusterId>> flagged_ranked;
  std::unordered_set<ClusterId> flagged;
  for (ClusterId cluster : clustering.ClusterIds()) {
    double p = model_->PredictProbability(MergeFeatures(*engine, cluster));
    ++stats.probability_evaluations;
    if (p >= theta) {
      flagged_ranked.emplace_back(p, cluster);
      flagged.insert(cluster);
    }
  }
  stats.predicted = flagged.size();
  if (options_.order_by_probability) {
    std::sort(flagged_ranked.begin(), flagged_ranked.end(),
              [](const auto& x, const auto& y) { return x.first > y.first; });
  }
  std::deque<ClusterId> queue;
  for (const auto& [p, cluster] : flagged_ranked) {
    (void)p;
    queue.push_back(cluster);
  }

  // Lines 3-13: process until Cl_merge is empty.
  while (!queue.empty()) {
    ClusterId cluster = queue.front();
    queue.pop_front();
    if (flagged.count(cluster) == 0) continue;  // consumed by an earlier merge
    flagged.erase(cluster);
    if (!clustering.HasCluster(cluster)) continue;

    // Select the partner minimizing P(C_new = 1): the merge producing the
    // most stable cluster (§6.2).
    std::vector<ClusterId> partners =
        engine->stats().InterNeighbors(cluster);
    if (options_.restrict_partners_to_predicted) {
      std::vector<ClusterId> restricted = partners;
      restricted.erase(std::remove_if(restricted.begin(), restricted.end(),
                                      [&flagged](ClusterId c) {
                                        return flagged.count(c) == 0;
                                      }),
                       restricted.end());
      if (!restricted.empty() || !options_.fallback_to_all_partners) {
        partners = std::move(restricted);
      }
    }
    if (options_.max_partner_checks > 0 &&
        partners.size() > options_.max_partner_checks) {
      // Keep the strongest neighbors by average inter similarity. The
      // averages are computed once per partner, not twice per comparison
      // (partial_sort does O(n log k) comparisons).
      std::unordered_map<ClusterId, double> avg_to;
      avg_to.reserve(partners.size());
      for (ClusterId partner : partners) {
        avg_to.emplace(partner,
                       engine->stats().AverageInterSimilarity(cluster,
                                                              partner));
      }
      std::partial_sort(
          partners.begin(), partners.begin() + options_.max_partner_checks,
          partners.end(), [&avg_to](ClusterId x, ClusterId y) {
            return avg_to.find(x)->second > avg_to.find(y)->second;
          });
      partners.resize(options_.max_partner_checks);
    }

    // Rank partners: by the objective's merge delta when a cheap-delta
    // objective is configured, otherwise by P(C_new = 1) ascending — the
    // merge producing the most stable cluster first (§6.2).
    std::vector<std::pair<double, ClusterId>> ranked;
    ranked.reserve(partners.size());
    for (ClusterId partner : partners) {
      double score;
      if (options_.partner_ranking_objective != nullptr) {
        score = options_.partner_ranking_objective->MergeDelta(*engine,
                                                               cluster,
                                                               partner);
      } else {
        score = model_->PredictProbability(
            MergedClusterFeatures(*engine, cluster, partner));
        ++stats.probability_evaluations;
      }
      ranked.emplace_back(score, partner);
    }
    if (ranked.empty()) continue;  // line 11: drop C
    std::sort(ranked.begin(), ranked.end());

    // Line 5: verify with the objective before applying (§5.4). A small
    // budget of runner-up partners is tried when the argmin fails.
    bool merged = false;
    size_t budget = std::max<size_t>(options_.verification_budget, 1);
    for (size_t i = 0; i < ranked.size() && i < budget; ++i) {
      ClusterId partner = ranked[i].second;
      uint64_t memo_key = MemoKey(cluster, clustering.ClusterVersion(cluster),
                                  partner,
                                  clustering.ClusterVersion(partner));
      if (memo != nullptr && memo->count(memo_key) > 0) continue;
      if (validator_->MergeImproves(*engine, cluster, partner)) {
        if (feedback != nullptr) {
          feedback->push_back({MergeFeatures(*engine, cluster), 1, 1.0});
          feedback->push_back({MergeFeatures(*engine, partner), 1, 1.0});
        }
        if (observer != nullptr) observer->OnMerge(*engine, cluster, partner);
        engine->Merge(cluster, partner);
        flagged.erase(partner);
        stats.changed = true;
        ++stats.applied;
        merged = true;
        break;
      }
      ++stats.rejected;
      if (memo != nullptr) memo->insert(memo_key);
    }
    if (!merged && feedback != nullptr) {
      feedback->push_back({MergeFeatures(*engine, cluster), 0, 1.0});
    }
  }
  return stats;
}

}  // namespace dynamicc
