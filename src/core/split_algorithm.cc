#include "core/split_algorithm.h"

#include <algorithm>
#include <vector>

#include "core/features.h"
#include "util/logging.h"

namespace dynamicc {

namespace {

/// Target cluster for split-as-move: the cluster holding the strongest
/// external neighbor of `object`.
ClusterId BestExternalCluster(const ClusteringEngine& engine,
                              ObjectId object) {
  ClusterId from = engine.clustering().ClusterOf(object);
  ClusterId best = kInvalidCluster;
  double best_sim = 0.0;
  for (const auto& [other, sim] : engine.graph().Neighbors(object)) {
    ClusterId cluster = engine.clustering().ClusterOf(other);
    if (cluster == kInvalidCluster || cluster == from) continue;
    if (sim > best_sim) {
      best_sim = sim;
      best = cluster;
    }
  }
  return best;
}

}  // namespace

SplitAlgorithm::SplitAlgorithm(const BinaryClassifier* model,
                               const ChangeValidator* validator)
    : SplitAlgorithm(model, validator, Options{}) {}

SplitAlgorithm::SplitAlgorithm(const BinaryClassifier* model,
                               const ChangeValidator* validator,
                               Options options)
    : model_(model), validator_(validator), options_(options) {
  DYNAMICC_CHECK(model != nullptr);
  DYNAMICC_CHECK(validator != nullptr);
}

PassStats SplitAlgorithm::Run(ClusteringEngine* engine, double theta,
                              SampleSet* feedback,
                              EvolutionObserver* observer,
                              VerificationMemo* memo) const {
  PassStats stats;
  // No split evolution observed yet: predict nothing rather than guess.
  if (!model_->is_fitted()) return stats;

  // Line 2: Cl_split <- clusters predicted 1 by the split model.
  std::vector<ClusterId> flagged;
  for (ClusterId cluster : engine->clustering().ClusterIds()) {
    if (engine->clustering().ClusterSize(cluster) < 2) continue;
    double p = model_->PredictProbability(SplitFeatures(*engine, cluster));
    ++stats.probability_evaluations;
    if (p >= theta) flagged.push_back(cluster);
  }
  stats.predicted = flagged.size();

  // Lines 3-13.
  for (ClusterId cluster : flagged) {
    if (!engine->clustering().HasCluster(cluster)) continue;
    if (engine->clustering().ClusterSize(cluster) < 2) continue;
    uint64_t memo_key =
        MemoKey(cluster, engine->clustering().ClusterVersion(cluster));
    if (memo != nullptr && memo->count(memo_key) > 0) continue;

    // Pre-change features: feedback must reflect what the model saw.
    std::vector<double> pre_features = SplitFeatures(*engine, cluster);

    // Step 1: rank members by weight = similarity to the rest (§6.3).
    std::vector<std::pair<double, ObjectId>> ranked;
    for (ObjectId member : engine->clustering().Members(cluster)) {
      ranked.emplace_back(engine->stats().SumToCluster(member, cluster),
                          member);
    }
    std::sort(ranked.begin(), ranked.end());
    if (!options_.most_different_first) {
      std::reverse(ranked.begin(), ranked.end());
    }
    if (ranked.size() > options_.max_candidates) {
      ranked.resize(options_.max_candidates);
    }

    // Step 2: first candidate whose removal verifiably improves wins.
    bool split_done = false;
    for (const auto& [weight, object] : ranked) {
      (void)weight;
      if (options_.split_as_move) {
        ClusterId target = BestExternalCluster(*engine, object);
        if (target == kInvalidCluster) continue;
        if (validator_->MoveImproves(*engine, object, target)) {
          // A move is split + merge (§4.1).
          if (observer != nullptr) {
            observer->OnSplit(*engine, cluster, {object});
          }
          engine->Move(object, target);
          split_done = true;
        }
      } else if (validator_->SplitImproves(*engine, cluster, {object})) {
        if (observer != nullptr) {
          observer->OnSplit(*engine, cluster, {object});
        }
        // Step 3: C' = {r}; one object per pass (§6.3).
        engine->SplitOut(cluster, {object});
        split_done = true;
      }
      if (split_done) break;
    }

    if (split_done) {
      stats.changed = true;
      ++stats.applied;
    } else {
      ++stats.rejected;
      if (memo != nullptr) memo->insert(memo_key);
    }
    if (feedback != nullptr) {
      feedback->push_back({std::move(pre_features), split_done ? 1 : 0, 1.0});
    }
  }
  return stats;
}

}  // namespace dynamicc
