#ifndef DYNAMICC_CORE_SESSION_H_
#define DYNAMICC_CORE_SESSION_H_

#include <memory>
#include <vector>

#include "batch/batch_algorithm.h"
#include "cluster/engine.h"
#include "core/dynamicc.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/operations.h"
#include "data/similarity_graph.h"
#include "ml/model.h"
#include "ml/threshold.h"

namespace dynamicc {

/// Facade wiring the whole DynamicC lifecycle together: apply data
/// operations (§6.1 initial processing), observe batch rounds to build the
/// evolution history and train models (§4, §5), then serve dynamic rounds
/// with Algorithm 3 plus continuous feedback retraining.
///
/// Typical use (see examples/quickstart.cc):
///
///   DynamicCSession session(&dataset, &graph, &batch, &validator,
///                           std::make_unique<LogisticRegression>(),
///                           std::make_unique<LogisticRegression>(), {});
///   session.ApplyOperations(initial_adds);
///   session.ObserveBatchRound();                 // training round(s)
///   for (const auto& snapshot : schedule) {
///     session.ApplyOperations(snapshot);
///     session.DynamicRound();                    // fast path
///   }
///
/// Sessions are single-threaded and id-passive on purpose: the sharded
/// serving layer (service/sharded_service.h) runs one session per shard
/// and splits *global* id assignment (dense, at its ingestion boundary)
/// from application (here, possibly later on a background worker). A
/// session only ever sees its own dataset's dense local ids, whether
/// its operations arrive synchronously or drained from a coalescing
/// OperationLog (data/operation_log.h) — the two streams are
/// composition-equivalent per object, which is what keeps the async
/// pipeline's flush state byte-identical to a synchronous run.
class DynamicCSession {
 public:
  struct Options {
    EvolutionTrainer::Options trainer;
    ThresholdPolicy threshold;
    DynamicCOptions dynamicc;
    /// Refit models from accumulated samples + feedback every N dynamic
    /// rounds (0 disables continuous retraining).
    int retrain_every = 1;
    /// Re-run the batch algorithm (a full ObserveBatchRound) every N
    /// dynamic rounds, "to establish a baseline for accuracy" as the paper
    /// suggests for long-running deployments (§1/§5). 0 = never; the pure
    /// dynamic mode the evaluation measures.
    int observe_every = 0;
  };

  /// All raw pointers must outlive the session. The validator decides
  /// whether predicted changes are applied (objective-backed or DBSCAN
  /// core-stability).
  DynamicCSession(Dataset* dataset, SimilarityGraph* graph,
                  BatchAlgorithm* batch, const ChangeValidator* validator,
                  std::unique_ptr<BinaryClassifier> merge_model,
                  std::unique_ptr<BinaryClassifier> split_model,
                  Options options);

  /// Applies one snapshot of operations to dataset + graph + engine,
  /// following §6.1 (adds become singletons; updates are remove+add with a
  /// stable id). Returns the ids of added/updated objects ("changed
  /// objects" for §4.3).
  std::vector<ObjectId> ApplyOperations(const OperationBatch& operations);

  struct TrainReport {
    double batch_ms = 0.0;
    double derive_ms = 0.0;
    double fit_ms = 0.0;
    size_t step_count = 0;
    double merge_theta = 0.5;
    double split_theta = 0.5;
  };

  /// Runs the underlying batch algorithm from scratch (on a scratch
  /// engine), derives the evolution steps from the session engine's
  /// current clustering to the batch result (§4.3), replays them through
  /// the trainer (harvesting samples), fits the models, and leaves the
  /// engine at the batch clustering. `changed` is the output of the
  /// preceding ApplyOperations.
  TrainReport ObserveBatchRound(const std::vector<ObjectId>& changed);

  struct DynamicReport {
    double recluster_ms = 0.0;
    double retrain_ms = 0.0;
    /// True when this round was served by the batch algorithm because of
    /// the observe_every cadence (recluster_ms then covers the batch run).
    bool used_batch = false;
    ReclusterReport detail;
  };

  /// Runs Algorithm 3 on the engine; harvests verification feedback and
  /// retrains per the configured cadence. The reported latency covers both
  /// re-clustering and retraining, like the paper's measurements (§7.1).
  /// `changed` (optional) is this round's added/updated objects — only
  /// needed when the observe_every cadence triggers a batch round.
  DynamicReport DynamicRound(const std::vector<ObjectId>& changed = {});

  /// The session state that must survive a process restart beyond what
  /// the dataset/graph/engine and the models themselves carry: the
  /// serving-phase flag, the retrain/observe cadence positions, and the
  /// decision thresholds. Together with the trainer's sample sets and
  /// the fitted model parameters this is everything that influences
  /// future rounds — a session restored from it behaves byte-identically
  /// to one that never restarted.
  struct PersistentState {
    bool trained = false;
    int rounds_since_retrain = 0;
    int rounds_since_observe = 0;
    size_t pending_feedback = 0;
    double merge_theta = 0.5;
    double split_theta = 0.5;
  };

  PersistentState ExportState() const;

  /// Restores counters, flags and thetas exported by ExportState. The
  /// caller restores the engine (SetClustering), the trainer
  /// (mutable_trainer()->RestoreState) and the models
  /// (ml/serialization's LoadClassifierInto on mutable_*_model())
  /// separately — they live in their own layers' formats.
  void ImportState(const PersistentState& state);

  /// Mutable access for state restoration (snapshot loading only).
  EvolutionTrainer* mutable_trainer() { return &trainer_; }
  BinaryClassifier* mutable_merge_model() { return merge_model_.get(); }
  BinaryClassifier* mutable_split_model() { return split_model_.get(); }

  ClusteringEngine& engine() { return engine_; }
  const ClusteringEngine& engine() const { return engine_; }
  /// Convenience for serving layers that only read the partition.
  const Clustering& clustering() const { return engine_.clustering(); }
  const Dataset& dataset() const { return *dataset_; }
  const SimilarityGraph& graph() const { return *graph_; }
  const Options& options() const { return options_; }
  const EvolutionTrainer& trainer() const { return trainer_; }
  const BinaryClassifier& merge_model() const { return *merge_model_; }
  const BinaryClassifier& split_model() const { return *split_model_; }
  DynamicC& dynamicc() { return dynamicc_; }
  bool is_trained() const { return trained_; }

 private:
  Dataset* dataset_;
  SimilarityGraph* graph_;
  BatchAlgorithm* batch_;
  std::unique_ptr<BinaryClassifier> merge_model_;
  std::unique_ptr<BinaryClassifier> split_model_;
  Options options_;
  ClusteringEngine engine_;
  EvolutionTrainer trainer_;
  DynamicC dynamicc_;
  bool trained_ = false;
  int rounds_since_retrain_ = 0;
  int rounds_since_observe_ = 0;
  size_t pending_feedback_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CORE_SESSION_H_
