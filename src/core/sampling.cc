#include "core/sampling.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"
#include "util/rng.h"

namespace dynamicc {

bool IsActiveCluster(const ClusteringEngine& engine, ClusterId cluster) {
  return !engine.stats().InterNeighbors(cluster).empty();
}

std::vector<ClusterId> SampleNegativeClusters(
    const ClusteringEngine& engine,
    const std::unordered_set<ObjectId>& involved_objects, size_t count,
    const NegativeSamplingOptions& options) {
  DYNAMICC_CHECK_GT(options.active_weight, 0.0);
  DYNAMICC_CHECK_GT(options.inactive_weight, 0.0);

  // Candidates: clusters untouched by this round's evolution.
  std::vector<ClusterId> candidates;
  std::vector<double> weights;
  for (ClusterId cluster : engine.clustering().ClusterIds()) {
    bool touched = false;
    for (ObjectId member : engine.clustering().Members(cluster)) {
      if (involved_objects.count(member) > 0) {
        touched = true;
        break;
      }
    }
    if (touched) continue;
    candidates.push_back(cluster);
    weights.push_back(IsActiveCluster(engine, cluster)
                          ? options.active_weight
                          : options.inactive_weight);
  }

  // Weighted sampling without replacement (Efraimidis–Spirakis keys:
  // u^(1/w) ranks draws by weight; we take the `count` largest keys).
  Rng rng(options.seed);
  std::vector<std::pair<double, ClusterId>> keyed;
  keyed.reserve(candidates.size());
  for (size_t i = 0; i < candidates.size(); ++i) {
    double u = rng.Uniform();
    if (u <= 0.0) u = 1e-12;
    keyed.emplace_back(std::pow(u, 1.0 / weights[i]), candidates[i]);
  }
  size_t take = std::min(count, keyed.size());
  std::partial_sort(
      keyed.begin(), keyed.begin() + take, keyed.end(),
      [](const auto& x, const auto& y) { return x.first > y.first; });
  std::vector<ClusterId> chosen;
  chosen.reserve(take);
  for (size_t i = 0; i < take; ++i) chosen.push_back(keyed[i].second);
  return chosen;
}

}  // namespace dynamicc
