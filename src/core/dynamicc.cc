#include "core/dynamicc.h"

namespace dynamicc {

DynamicC::DynamicC(const BinaryClassifier* merge_model,
                   const BinaryClassifier* split_model,
                   const ChangeValidator* validator)
    : DynamicC(merge_model, split_model, validator, DynamicCOptions{}) {}

DynamicC::DynamicC(const BinaryClassifier* merge_model,
                   const BinaryClassifier* split_model,
                   const ChangeValidator* validator, DynamicCOptions options)
    : merge_(merge_model, validator, options.merge),
      split_(split_model, validator, options.split),
      max_iterations_(options.max_iterations) {}

void DynamicC::SetThetas(double merge_theta, double split_theta) {
  merge_theta_ = merge_theta;
  split_theta_ = split_theta;
}

ReclusterReport DynamicC::Recluster(ClusteringEngine* engine,
                                    SampleSet* merge_feedback,
                                    SampleSet* split_feedback,
                                    EvolutionObserver* observer) const {
  ReclusterReport report;
  // Rejected verifications are memoized across the merge/split iterations
  // of this call: an unchanged cluster (same version) is not re-verified.
  VerificationMemo memo;
  bool change = true;  // line 3
  while (change && report.iterations < max_iterations_) {
    change = false;
    // Line 5: merge first — new objects arrive as singletons and are far
    // more likely to join clusters than to split anything (§6.2).
    PassStats merge_stats =
        merge_.Run(engine, merge_theta_, merge_feedback, observer, &memo);
    PassStats split_stats =
        split_.Run(engine, split_theta_, split_feedback, observer, &memo);
    change = merge_stats.changed || split_stats.changed;
    report.merges_applied += merge_stats.applied;
    report.splits_applied += split_stats.applied;
    report.merge_predicted += merge_stats.predicted;
    report.split_predicted += split_stats.predicted;
    report.rejected += merge_stats.rejected + split_stats.rejected;
    report.probability_evaluations += merge_stats.probability_evaluations +
                                      split_stats.probability_evaluations;
    ++report.iterations;
  }
  return report;
}

}  // namespace dynamicc
