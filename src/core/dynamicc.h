#ifndef DYNAMICC_CORE_DYNAMICC_H_
#define DYNAMICC_CORE_DYNAMICC_H_

#include <cstddef>

#include "cluster/engine.h"
#include "core/merge_algorithm.h"
#include "core/split_algorithm.h"
#include "ml/model.h"
#include "objective/objective.h"

namespace dynamicc {

/// Configuration of the full DynamicC algorithm (Algorithm 3).
struct DynamicCOptions {
  MergeAlgorithm::Options merge;
  SplitAlgorithm::Options split;
  /// Safety cap on merge/split alternations (the algorithm provably
  /// converges because every applied change improves the objective, §6.4,
  /// but a cap guards against validator pathologies).
  size_t max_iterations = 25;
};

/// Counters describing one Recluster call.
struct ReclusterReport {
  size_t iterations = 0;
  size_t merges_applied = 0;
  size_t splits_applied = 0;
  size_t merge_predicted = 0;
  size_t split_predicted = 0;
  size_t rejected = 0;
  size_t probability_evaluations = 0;
};

/// Algorithm 3 — full DynamicC. Alternates the Merge and Split algorithms
/// until neither changes the clustering. Callers apply the §6.1 initial
/// processing (new/updated objects as singletons) before invoking
/// Recluster; ClusteringEngine + DynamicCSession handle that.
class DynamicC {
 public:
  DynamicC(const BinaryClassifier* merge_model,
           const BinaryClassifier* split_model,
           const ChangeValidator* validator);
  DynamicC(const BinaryClassifier* merge_model,
           const BinaryClassifier* split_model,
           const ChangeValidator* validator, DynamicCOptions options);

  /// Sets the decision thresholds (from EvolutionTrainer::Fit or manual
  /// trade-off tuning, §5.4).
  void SetThetas(double merge_theta, double split_theta);

  double merge_theta() const { return merge_theta_; }
  double split_theta() const { return split_theta_; }

  /// Runs merge/split alternation to a fixpoint. Optional feedback sets
  /// collect labelled outcomes for continuous retraining; the optional
  /// observer sees applied changes.
  ReclusterReport Recluster(ClusteringEngine* engine,
                            SampleSet* merge_feedback = nullptr,
                            SampleSet* split_feedback = nullptr,
                            EvolutionObserver* observer = nullptr) const;

 private:
  MergeAlgorithm merge_;
  SplitAlgorithm split_;
  double merge_theta_ = 0.5;
  double split_theta_ = 0.5;
  size_t max_iterations_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CORE_DYNAMICC_H_
