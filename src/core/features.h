#ifndef DYNAMICC_CORE_FEATURES_H_
#define DYNAMICC_CORE_FEATURES_H_

#include <vector>

#include "cluster/engine.h"
#include "data/types.h"

namespace dynamicc {

/// Number of features of the Merge model: (f1) average intra similarity,
/// (f2) maximal average inter similarity, (f3) cluster size, (f4) size of
/// the cluster attaining f2 (§5.2).
inline constexpr size_t kMergeFeatureCount = 4;

/// Number of features of the Split model: f1..f3 only (a split involves one
/// cluster, §5.2).
inline constexpr size_t kSplitFeatureCount = 3;

/// Extracts the Merge-model feature vector (f1, f2, f3, f4) of `cluster`
/// from the engine's current state. When the cluster has no inter
/// neighbors, f2 = 0 and f4 = 1 (a hypothetical empty partner).
std::vector<double> MergeFeatures(const ClusteringEngine& engine,
                                  ClusterId cluster);

/// Extracts the Split-model feature vector (f1, f2, f3) of `cluster`.
std::vector<double> SplitFeatures(const ClusteringEngine& engine,
                                  ClusterId cluster);

/// Merge-model features of the *hypothetical* cluster that would result
/// from merging `a` and `b` — used by Algorithm 1 to pick the partner that
/// minimizes P(C_new = 1) (§6.2) without mutating the engine.
std::vector<double> MergedClusterFeatures(const ClusteringEngine& engine,
                                          ClusterId a, ClusterId b);

}  // namespace dynamicc

#endif  // DYNAMICC_CORE_FEATURES_H_
