#include "core/features.h"

#include <algorithm>

#include "util/logging.h"

namespace dynamicc {

std::vector<double> MergeFeatures(const ClusteringEngine& engine,
                                  ClusterId cluster) {
  const auto& stats = engine.stats();
  auto max_inter = stats.MaxAverageInter(cluster);
  double partner_size =
      max_inter.cluster == kInvalidCluster
          ? 1.0
          : static_cast<double>(
                engine.clustering().ClusterSize(max_inter.cluster));
  return {stats.AverageIntraSimilarity(cluster), max_inter.average,
          static_cast<double>(engine.clustering().ClusterSize(cluster)),
          partner_size};
}

std::vector<double> SplitFeatures(const ClusteringEngine& engine,
                                  ClusterId cluster) {
  const auto& stats = engine.stats();
  return {stats.AverageIntraSimilarity(cluster),
          stats.MaxAverageInter(cluster).average,
          static_cast<double>(engine.clustering().ClusterSize(cluster))};
}

std::vector<double> MergedClusterFeatures(const ClusteringEngine& engine,
                                          ClusterId a, ClusterId b) {
  DYNAMICC_CHECK_NE(a, b);
  const auto& clustering = engine.clustering();
  const auto& stats = engine.stats();
  double size_a = static_cast<double>(clustering.ClusterSize(a));
  double size_b = static_cast<double>(clustering.ClusterSize(b));
  double merged_size = size_a + size_b;

  // f1: combined intra sum = intra(a) + intra(b) + inter(a, b).
  double intra_sum =
      stats.IntraSum(a) + stats.IntraSum(b) + stats.InterSum(a, b);
  double pairs = 0.5 * merged_size * (merged_size - 1.0);
  double avg_intra = pairs > 0.0 ? intra_sum / pairs : 1.0;

  // f2/f4: the merged cluster's inter rows are the sums of both rows.
  double best_avg = 0.0;
  double best_size = 1.0;
  auto consider = [&](ClusterId other) {
    if (other == a || other == b) return;
    double sum = stats.InterSum(a, other) + stats.InterSum(b, other);
    double other_size = static_cast<double>(clustering.ClusterSize(other));
    double avg = sum / (merged_size * other_size);
    if (avg > best_avg) {
      best_avg = avg;
      best_size = other_size;
    }
  };
  for (ClusterId other : stats.InterNeighbors(a)) consider(other);
  for (ClusterId other : stats.InterNeighbors(b)) consider(other);

  return {avg_intra, best_avg, merged_size, best_size};
}

}  // namespace dynamicc
