#ifndef DYNAMICC_CORE_TRANSFORM_H_
#define DYNAMICC_CORE_TRANSFORM_H_

#include <vector>

#include "cluster/evolution.h"
#include "data/types.h"

namespace dynamicc {

/// Derives a short list of merge/split steps that transforms `old_clusters`
/// into `new_clusters` — the §4.3 cross-round evolution representation.
///
/// Both inputs must partition the same object set. `old_clusters` is the
/// *adjusted* previous clustering: removed objects already dropped, and
/// added/updated objects present as singletons (the §6.1 initial
/// processing). `changed_objects` are this round's added/updated objects;
/// target clusters containing them are processed first (Phase 1), then the
/// remaining differing clusters (Phase 2). Per the paper, step order
/// between unrelated clusters is not semantically meaningful — the trainer
/// only observes steps independently.
///
/// The construction follows §4.3 exactly: for each target cluster c, every
/// old cluster c' that partially overlaps c is split into c' ∩ c and
/// c' − (c' ∩ c) (fully contained clusters are not split — "c' is split
/// into c' and ∅"), after which the n intersection clusters are merged one
/// by one, yielding n − 1 merge steps.
EvolutionList DeriveTransformation(
    const std::vector<std::vector<ObjectId>>& old_clusters,
    const std::vector<std::vector<ObjectId>>& new_clusters,
    const std::vector<ObjectId>& changed_objects);

/// Applies `steps` to a partition represented as member lists (test/debug
/// helper): returns the partition after all merges/splits.
std::vector<std::vector<ObjectId>> ApplySteps(
    const std::vector<std::vector<ObjectId>>& clusters,
    const EvolutionList& steps);

}  // namespace dynamicc

#endif  // DYNAMICC_CORE_TRANSFORM_H_
