#ifndef DYNAMICC_CORE_SPLIT_ALGORITHM_H_
#define DYNAMICC_CORE_SPLIT_ALGORITHM_H_

#include <cstddef>

#include "cluster/engine.h"
#include "cluster/evolution.h"
#include "core/merge_algorithm.h"
#include "ml/model.h"
#include "ml/sample.h"
#include "objective/objective.h"

namespace dynamicc {

/// Algorithm 2 — the Split algorithm. The Split model flags clusters; for
/// each flagged cluster the members are ranked by their similarity to the
/// rest of the cluster (most different first — §6.3's weight heuristic) and
/// the first object whose removal the validator confirms is split out into
/// a singleton. One object per pass: later passes (Algorithm 3 alternates)
/// continue incomplete splits.
class SplitAlgorithm {
 public:
  struct Options {
    /// Rank candidates most-different-first (the heuristic's stated intent)
    /// or in the paper's literal "decreasing weight" order (A4 ablation).
    bool most_different_first = true;
    /// How many ranked candidates to verify per cluster before giving up.
    size_t max_candidates = 8;
    /// k-means mode (DESIGN.md note 4): realize the split as a *move* of
    /// the object into its best neighboring cluster, keeping k fixed.
    bool split_as_move = false;
  };

  SplitAlgorithm(const BinaryClassifier* model,
                 const ChangeValidator* validator);
  SplitAlgorithm(const BinaryClassifier* model,
                 const ChangeValidator* validator, Options options);

  /// One pass over the engine's clusters with decision threshold `theta`.
  /// `memo` suppresses re-verification of clusters already rejected at the
  /// same membership version.
  PassStats Run(ClusteringEngine* engine, double theta,
                SampleSet* feedback = nullptr,
                EvolutionObserver* observer = nullptr,
                VerificationMemo* memo = nullptr) const;

 private:
  const BinaryClassifier* model_;
  const ChangeValidator* validator_;
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CORE_SPLIT_ALGORITHM_H_
