#include "core/session.h"

#include <algorithm>
#include <utility>

#include "core/transform.h"
#include "util/logging.h"
#include "util/timer.h"

namespace dynamicc {

DynamicCSession::DynamicCSession(Dataset* dataset, SimilarityGraph* graph,
                                 BatchAlgorithm* batch,
                                 const ChangeValidator* validator,
                                 std::unique_ptr<BinaryClassifier> merge_model,
                                 std::unique_ptr<BinaryClassifier> split_model,
                                 Options options)
    : dataset_(dataset),
      graph_(graph),
      batch_(batch),
      merge_model_(std::move(merge_model)),
      split_model_(std::move(split_model)),
      options_(options),
      engine_(graph),
      trainer_(options.trainer),
      dynamicc_(merge_model_.get(), split_model_.get(), validator,
                options.dynamicc) {
  DYNAMICC_CHECK(dataset != nullptr);
  DYNAMICC_CHECK(graph != nullptr);
  DYNAMICC_CHECK(batch != nullptr);
  DYNAMICC_CHECK(merge_model_ != nullptr);
  DYNAMICC_CHECK(split_model_ != nullptr);
}

DynamicCSession::PersistentState DynamicCSession::ExportState() const {
  PersistentState state;
  state.trained = trained_;
  state.rounds_since_retrain = rounds_since_retrain_;
  state.rounds_since_observe = rounds_since_observe_;
  state.pending_feedback = pending_feedback_;
  state.merge_theta = dynamicc_.merge_theta();
  state.split_theta = dynamicc_.split_theta();
  return state;
}

void DynamicCSession::ImportState(const PersistentState& state) {
  trained_ = state.trained;
  rounds_since_retrain_ = state.rounds_since_retrain;
  rounds_since_observe_ = state.rounds_since_observe;
  pending_feedback_ = state.pending_feedback;
  dynamicc_.SetThetas(state.merge_theta, state.split_theta);
}

std::vector<ObjectId> DynamicCSession::ApplyOperations(
    const OperationBatch& operations) {
  std::vector<ObjectId> changed;
  for (const DataOperation& op : operations) {
    switch (op.kind) {
      case DataOperation::Kind::kAdd: {
        ObjectId id = dataset_->Add(op.record);
        graph_->AddObject(id);
        engine_.AddObjectAsSingleton(id);
        changed.push_back(id);
        break;
      }
      case DataOperation::Kind::kRemove: {
        engine_.RemoveObject(op.target);
        graph_->RemoveObject(op.target);
        dataset_->Remove(op.target);
        break;
      }
      case DataOperation::Kind::kUpdate: {
        // §6.1: an update is remove + add-as-new-singleton with a stable id.
        Record old_record = dataset_->Get(op.target);
        engine_.RemoveObject(op.target);
        dataset_->Update(op.target, op.record);
        graph_->UpdateObject(op.target, old_record);
        engine_.AddObjectAsSingleton(op.target);
        changed.push_back(op.target);
        break;
      }
    }
  }
  return changed;
}

DynamicCSession::TrainReport DynamicCSession::ObserveBatchRound(
    const std::vector<ObjectId>& changed) {
  TrainReport report;
  Timer timer;

  // Reference batch run on a scratch engine over the same graph.
  ClusteringEngine batch_engine(graph_);
  batch_->Run(&batch_engine, nullptr);
  report.batch_ms = timer.ElapsedMillis();

  // §4.3: derive the cross-round steps old -> batch result.
  timer.Reset();
  EvolutionList steps =
      DeriveTransformation(engine_.clustering().CanonicalClusters(),
                           batch_engine.clustering().CanonicalClusters(),
                           changed);
  report.derive_ms = timer.ElapsedMillis();
  report.step_count = steps.size();

  // Replay through the trainer; the engine ends at the batch clustering.
  timer.Reset();
  trainer_.AccumulateRound(&engine_, steps);
  DYNAMICC_CHECK(engine_.clustering().CanonicalClusters() ==
                 batch_engine.clustering().CanonicalClusters())
      << "transformation replay must reproduce the batch clustering";

  EvolutionTrainer::FitReport fit =
      trainer_.Fit(merge_model_.get(), split_model_.get(),
                   options_.threshold);
  report.fit_ms = timer.ElapsedMillis();
  report.merge_theta = fit.merge_theta;
  report.split_theta = fit.split_theta;
  // A workload may not have produced split evolution yet; the merge model
  // alone is enough to start serving (unfitted models predict nothing).
  if (fit.merge_fitted || fit.split_fitted) {
    dynamicc_.SetThetas(fit.merge_theta, fit.split_theta);
    trained_ = true;
  }
  return report;
}

DynamicCSession::DynamicReport DynamicCSession::DynamicRound(
    const std::vector<ObjectId>& changed) {
  DYNAMICC_CHECK(trained_)
      << "DynamicRound requires at least one ObserveBatchRound with "
         "evolution steps";
  DynamicReport report;

  // Long-run accuracy baseline (§1): occasionally serve with the batch
  // algorithm, which also refreshes the evolution history and the models.
  if (options_.observe_every > 0 &&
      ++rounds_since_observe_ >= options_.observe_every) {
    rounds_since_observe_ = 0;
    TrainReport observe = ObserveBatchRound(changed);
    report.recluster_ms = observe.batch_ms + observe.derive_ms;
    report.retrain_ms = observe.fit_ms;
    report.used_batch = true;
    return report;
  }

  Timer timer;
  SampleSet merge_feedback, split_feedback;
  report.detail =
      dynamicc_.Recluster(&engine_, &merge_feedback, &split_feedback);
  report.recluster_ms = timer.ElapsedMillis();

  timer.Reset();
  if (options_.retrain_every > 0) {
    // Feedback hygiene: only *erroneous* predictions (validator
    // rejections) are fed back, as negatives, and only a bounded slice of
    // them — flooding the training set with near-duplicate negatives
    // erodes class separability. Applied changes are NOT fed back as
    // positives: they were chosen by the model, so learning from them
    // would be self-confirming.
    auto rejections_only = [](const SampleSet& samples) {
      size_t budget = 16;
      SampleSet kept;
      for (const Sample& sample : samples) {
        if (sample.label == 0 && budget > 0) {
          kept.push_back(sample);
          --budget;
        }
      }
      return kept;
    };
    SampleSet merge_rejections = rejections_only(merge_feedback);
    SampleSet split_rejections = rejections_only(split_feedback);
    trainer_.AddMergeFeedback(merge_rejections);
    trainer_.AddSplitFeedback(split_rejections);
    pending_feedback_ += merge_rejections.size() + split_rejections.size();
    if (++rounds_since_retrain_ >= options_.retrain_every &&
        pending_feedback_ > 0) {
      // Nothing new to learn => skip the refit (retraining cost counts
      // toward latency, so pointless refits would distort measurements).
      rounds_since_retrain_ = 0;
      pending_feedback_ = 0;
      EvolutionTrainer::FitReport fit = trainer_.Fit(
          merge_model_.get(), split_model_.get(), options_.threshold);
      if (fit.merge_fitted || fit.split_fitted) {
        dynamicc_.SetThetas(fit.merge_theta, fit.split_theta);
      }
    }
  }
  report.retrain_ms = timer.ElapsedMillis();
  return report;
}

}  // namespace dynamicc
