#include "core/trainer.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "core/features.h"
#include "util/logging.h"

namespace dynamicc {

EvolutionTrainer::EvolutionTrainer() : EvolutionTrainer(Options{}) {}

EvolutionTrainer::EvolutionTrainer(Options options) : options_(options) {}

void EvolutionTrainer::AccumulateRound(ClusteringEngine* engine,
                                       const EvolutionList& steps) {
  ++round_counter_;
  std::unordered_set<ObjectId> involved;
  size_t merge_positives = 0;
  size_t split_positives = 0;

  for (const EvolutionStep& step : steps) {
    for (ObjectId object : step.left) involved.insert(object);
    for (ObjectId object : step.right) involved.insert(object);
    const auto& clustering = engine->clustering();
    if (step.kind == EvolutionStep::Kind::kMerge) {
      ClusterId a = clustering.ClusterOf(step.left.front());
      ClusterId b = clustering.ClusterOf(step.right.front());
      DYNAMICC_CHECK_NE(a, kInvalidCluster);
      DYNAMICC_CHECK_NE(b, kInvalidCluster);
      DYNAMICC_CHECK_NE(a, b) << "merge step objects already co-clustered";
      // Both participating clusters are positive merge examples (§5.2).
      merge_samples_.push_back({MergeFeatures(*engine, a), 1, 1.0});
      merge_samples_.push_back({MergeFeatures(*engine, b), 1, 1.0});
      merge_positives += 2;
      engine->Merge(a, b);
    } else {
      ClusterId cluster = clustering.ClusterOf(step.left.front());
      DYNAMICC_CHECK_NE(cluster, kInvalidCluster);
      split_samples_.push_back({SplitFeatures(*engine, cluster), 1, 1.0});
      ++split_positives;
      // Split out the smaller side; the remainder keeps the cluster id.
      const auto& part =
          step.left.size() <= step.right.size() ? step.left : step.right;
      DYNAMICC_CHECK_LT(part.size(),
                        engine->clustering().ClusterSize(cluster));
      engine->SplitOut(cluster, part);
    }
  }

  // Negative samples from untouched clusters, matched 1:1 with positives
  // (§5.3), drawn independently for the two models.
  NegativeSamplingOptions merge_sampling = options_.sampling;
  merge_sampling.seed = options_.sampling.seed + 2 * round_counter_;
  for (ClusterId cluster : SampleNegativeClusters(*engine, involved,
                                                  merge_positives,
                                                  merge_sampling)) {
    merge_samples_.push_back({MergeFeatures(*engine, cluster), 0, 1.0});
  }
  NegativeSamplingOptions split_sampling = options_.sampling;
  split_sampling.seed = options_.sampling.seed + 2 * round_counter_ + 1;
  for (ClusterId cluster : SampleNegativeClusters(*engine, involved,
                                                  split_positives,
                                                  split_sampling)) {
    split_samples_.push_back({SplitFeatures(*engine, cluster), 0, 1.0});
  }

  Trim(&merge_samples_);
  Trim(&split_samples_);
}

void EvolutionTrainer::RestoreState(SampleSet merge_samples,
                                    SampleSet split_samples,
                                    uint64_t rounds_observed) {
  merge_samples_ = std::move(merge_samples);
  split_samples_ = std::move(split_samples);
  round_counter_ = rounds_observed;
  Trim(&merge_samples_);
  Trim(&split_samples_);
}

void EvolutionTrainer::AddMergeFeedback(const SampleSet& samples) {
  merge_samples_.insert(merge_samples_.end(), samples.begin(), samples.end());
  Trim(&merge_samples_);
}

void EvolutionTrainer::AddSplitFeedback(const SampleSet& samples) {
  split_samples_.insert(split_samples_.end(), samples.begin(), samples.end());
  Trim(&split_samples_);
}

void EvolutionTrainer::Trim(SampleSet* samples) {
  if (samples->size() <= options_.max_samples) return;
  samples->erase(samples->begin(),
                 samples->begin() + (samples->size() - options_.max_samples));
}

EvolutionTrainer::FitReport EvolutionTrainer::Fit(
    BinaryClassifier* merge_model, BinaryClassifier* split_model,
    const ThresholdPolicy& policy) const {
  FitReport report;
  report.merge_sample_count = merge_samples_.size();
  report.split_sample_count = split_samples_.size();
  if (merge_model != nullptr && !merge_samples_.empty()) {
    merge_model->Fit(merge_samples_);
    report.merge_theta =
        SelectRecallFirstThreshold(*merge_model, merge_samples_, policy);
    report.merge_fitted = true;
  }
  if (split_model != nullptr && !split_samples_.empty()) {
    split_model->Fit(split_samples_);
    report.split_theta =
        SelectRecallFirstThreshold(*split_model, split_samples_, policy);
    report.split_fitted = true;
  }
  return report;
}

}  // namespace dynamicc
