#include "core/transform.h"

#include <algorithm>
#include <unordered_map>
#include <unordered_set>

#include "util/logging.h"

namespace dynamicc {

namespace {

using MemberList = std::vector<ObjectId>;

MemberList Sorted(MemberList v) {
  std::sort(v.begin(), v.end());
  return v;
}

/// Mutable partition with object -> group lookup.
class WorkingPartition {
 public:
  explicit WorkingPartition(const std::vector<MemberList>& clusters) {
    for (const MemberList& members : clusters) {
      size_t group = groups_.size();
      groups_.push_back({members.begin(), members.end()});
      for (ObjectId object : members) owner_[object] = group;
    }
  }

  size_t GroupOf(ObjectId object) const {
    auto it = owner_.find(object);
    DYNAMICC_CHECK(it != owner_.end()) << "object " << object
                                       << " missing from old clustering";
    return it->second;
  }

  const std::unordered_set<ObjectId>& Members(size_t group) const {
    return groups_[group];
  }

  /// Splits `part` out of `group` into a new group; returns the new index.
  size_t Split(size_t group, const MemberList& part) {
    size_t fresh = groups_.size();
    groups_.emplace_back();
    for (ObjectId object : part) {
      DYNAMICC_CHECK_EQ(owner_.at(object), group);
      groups_[group].erase(object);
      groups_[fresh].insert(object);
      owner_[object] = fresh;
    }
    return fresh;
  }

  /// Merges group `b` into group `a`.
  void Merge(size_t a, size_t b) {
    DYNAMICC_CHECK_NE(a, b);
    for (ObjectId object : groups_[b]) {
      owner_[object] = a;
      groups_[a].insert(object);
    }
    groups_[b].clear();
  }

 private:
  std::vector<std::unordered_set<ObjectId>> groups_;
  std::unordered_map<ObjectId, size_t> owner_;
};

MemberList ToSortedList(const std::unordered_set<ObjectId>& set) {
  MemberList out(set.begin(), set.end());
  std::sort(out.begin(), out.end());
  return out;
}

/// Emits the steps that make target cluster `target` exist in `partition`.
void RealizeTarget(WorkingPartition* partition, const MemberList& target,
                   EvolutionList* steps) {
  std::unordered_set<ObjectId> target_set(target.begin(), target.end());

  // Distinct old groups overlapping the target.
  std::vector<size_t> overlapping;
  {
    std::unordered_set<size_t> seen;
    for (ObjectId object : target) {
      size_t group = partition->GroupOf(object);
      if (seen.insert(group).second) overlapping.push_back(group);
    }
  }

  // Phase-2 splits: partially-overlapping groups are cut along the target
  // boundary; fully-contained groups are left alone ("split into c' and ∅").
  std::vector<size_t> parts;
  for (size_t group : overlapping) {
    MemberList inside, outside;
    for (ObjectId object : partition->Members(group)) {
      (target_set.count(object) > 0 ? inside : outside).push_back(object);
    }
    if (outside.empty()) {
      parts.push_back(group);
      continue;
    }
    EvolutionStep step;
    step.kind = EvolutionStep::Kind::kSplit;
    step.left = Sorted(inside);
    step.right = Sorted(outside);
    steps->push_back(step);
    parts.push_back(partition->Split(group, step.left));
  }

  // Merge the intersection pieces one by one: n - 1 merge steps.
  for (size_t i = 1; i < parts.size(); ++i) {
    EvolutionStep step;
    step.kind = EvolutionStep::Kind::kMerge;
    step.left = ToSortedList(partition->Members(parts[0]));
    step.right = ToSortedList(partition->Members(parts[i]));
    steps->push_back(step);
    partition->Merge(parts[0], parts[i]);
  }
}

}  // namespace

EvolutionList DeriveTransformation(
    const std::vector<std::vector<ObjectId>>& old_clusters,
    const std::vector<std::vector<ObjectId>>& new_clusters,
    const std::vector<ObjectId>& changed_objects) {
  WorkingPartition partition(old_clusters);
  std::unordered_set<ObjectId> changed(changed_objects.begin(),
                                       changed_objects.end());

  EvolutionList steps;
  // Phase 1: target clusters touching this round's changed objects first.
  std::vector<const MemberList*> deferred;
  for (const MemberList& target : new_clusters) {
    bool touches_change = std::any_of(
        target.begin(), target.end(),
        [&changed](ObjectId object) { return changed.count(object) > 0; });
    if (touches_change) {
      RealizeTarget(&partition, target, &steps);
    } else {
      deferred.push_back(&target);
    }
  }
  // Phase 2: the remaining (old-object-only) clusters.
  for (const MemberList* target : deferred) {
    RealizeTarget(&partition, *target, &steps);
  }
  return steps;
}

std::vector<std::vector<ObjectId>> ApplySteps(
    const std::vector<std::vector<ObjectId>>& clusters,
    const EvolutionList& steps) {
  // Represent the partition as sets keyed by their smallest member through
  // a WorkingPartition-like replay.
  std::vector<std::unordered_set<ObjectId>> groups;
  std::unordered_map<ObjectId, size_t> owner;
  for (const auto& members : clusters) {
    size_t group = groups.size();
    groups.push_back({members.begin(), members.end()});
    for (ObjectId object : members) owner[object] = group;
  }
  for (const EvolutionStep& step : steps) {
    if (step.kind == EvolutionStep::Kind::kMerge) {
      size_t a = owner.at(step.left.front());
      size_t b = owner.at(step.right.front());
      DYNAMICC_CHECK_NE(a, b) << "merge of objects already together";
      for (ObjectId object : groups[b]) {
        owner[object] = a;
        groups[a].insert(object);
      }
      groups[b].clear();
    } else {
      size_t group = owner.at(step.left.front());
      size_t fresh = groups.size();
      groups.emplace_back();
      for (ObjectId object : step.left) {
        DYNAMICC_CHECK_EQ(owner.at(object), group);
        groups[group].erase(object);
        groups[fresh].insert(object);
        owner[object] = fresh;
      }
    }
  }
  std::vector<std::vector<ObjectId>> out;
  for (const auto& group : groups) {
    if (group.empty()) continue;
    std::vector<ObjectId> members(group.begin(), group.end());
    std::sort(members.begin(), members.end());
    out.push_back(std::move(members));
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace dynamicc
