#ifndef DYNAMICC_CORE_SAMPLING_H_
#define DYNAMICC_CORE_SAMPLING_H_

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "cluster/engine.h"
#include "data/types.h"
#include "ml/sample.h"

namespace dynamicc {

/// Negative-sampling configuration (§5.3). "Active" clusters — clusters
/// with at least one inter-cluster similarity edge, i.e. involved in a
/// multi-cluster connected component — are weighted higher because the
/// batch algorithm inspects them more often.
struct NegativeSamplingOptions {
  double active_weight = 0.7;
  double inactive_weight = 0.3;
  uint64_t seed = 42;
};

/// Draws up to `count` negative clusters (weighted, without replacement)
/// from the engine's clusters whose members are disjoint from
/// `involved_objects` (objects that took part in any evolution step this
/// round). Returns the chosen cluster ids.
std::vector<ClusterId> SampleNegativeClusters(
    const ClusteringEngine& engine,
    const std::unordered_set<ObjectId>& involved_objects, size_t count,
    const NegativeSamplingOptions& options);

/// True if the cluster has at least one inter-similarity neighbor.
bool IsActiveCluster(const ClusteringEngine& engine, ClusterId cluster);

}  // namespace dynamicc

#endif  // DYNAMICC_CORE_SAMPLING_H_
