#ifndef DYNAMICC_CORE_TRAINER_H_
#define DYNAMICC_CORE_TRAINER_H_

#include <cstddef>

#include "cluster/engine.h"
#include "cluster/evolution.h"
#include "core/sampling.h"
#include "ml/model.h"
#include "ml/sample.h"
#include "ml/threshold.h"

namespace dynamicc {

/// Builds the Merge/Split training sets from cluster-evolution history
/// (§5.2–5.3) and fits the models with recall-first thresholds (§5.4).
///
/// For each observed round, AccumulateRound *replays* the evolution steps
/// on the engine: positive samples are extracted from the pre-step cluster
/// state (exactly what the model will see at prediction time), then
/// negative samples are drawn from untouched clusters with active-cluster
/// weighting. After the replay the engine holds the round's final (batch)
/// clustering.
class EvolutionTrainer {
 public:
  struct Options {
    NegativeSamplingOptions sampling;
    /// Oldest samples are evicted beyond this bound — "we remove those old
    /// samples when the size of training data becomes too large" (§5.3).
    size_t max_samples = 20000;
  };

  EvolutionTrainer();
  explicit EvolutionTrainer(Options options);

  /// Replays one round of evolution steps, harvesting samples. The engine
  /// must hold the pre-round clustering; it ends at the post-round one.
  void AccumulateRound(ClusteringEngine* engine, const EvolutionList& steps);

  /// Online feedback from the dynamic phase: verified predictions become
  /// positives, rejected ones negatives ("observing the erroneous
  /// predictions during operation", §1/§5).
  void AddMergeFeedback(const SampleSet& samples);
  void AddSplitFeedback(const SampleSet& samples);

  const SampleSet& merge_samples() const { return merge_samples_; }
  const SampleSet& split_samples() const { return split_samples_; }

  /// Observed rounds so far. The counter seeds per-round negative
  /// sampling, so it is part of the trainer's persistent state: a
  /// restored trainer must draw the same negatives in its next round as
  /// the never-restarted one.
  uint64_t rounds_observed() const { return round_counter_; }

  /// Restores the full mutable state (sample sets + round counter) from
  /// a snapshot; options stay whatever this trainer was built with.
  void RestoreState(SampleSet merge_samples, SampleSet split_samples,
                    uint64_t rounds_observed);

  struct FitReport {
    double merge_theta = 0.5;
    double split_theta = 0.5;
    size_t merge_sample_count = 0;
    size_t split_sample_count = 0;
    bool merge_fitted = false;
    bool split_fitted = false;
  };

  /// Fits both models on the accumulated samples and selects the
  /// recall-first thresholds. Either model may be skipped (nullptr).
  FitReport Fit(BinaryClassifier* merge_model, BinaryClassifier* split_model,
                const ThresholdPolicy& policy) const;

 private:
  void Trim(SampleSet* samples);

  Options options_;
  SampleSet merge_samples_;
  SampleSet split_samples_;
  uint64_t round_counter_ = 0;
};

}  // namespace dynamicc

#endif  // DYNAMICC_CORE_TRAINER_H_
