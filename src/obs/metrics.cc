#include "obs/metrics.h"

#include <cmath>
#include <functional>
#include <thread>

namespace dynamicc {
namespace obs {

size_t ThreadStripe() {
  // Hash of the thread id, computed once per thread. Distinct threads
  // may share a stripe (kMetricStripes is a contention hedge, not an
  // identity); correctness only needs every write to land in *a*
  // stripe that reads sum over.
  static thread_local const size_t stripe =
      std::hash<std::thread::id>{}(std::this_thread::get_id()) %
      kMetricStripes;
  return stripe;
}

double Histogram::UpperBound(int bucket) {
  return kMinBound * std::ldexp(1.0, bucket);
}

int Histogram::BucketFor(double value) {
  if (!(value > kMinBound)) return 0;  // also catches NaN and negatives
  // Smallest b with kMinBound * 2^b >= value. frexp is exact where
  // log2 would wobble at powers of two: frexp(v) = m * 2^e with
  // m in [0.5, 1), so v <= 2^e always and v > 2^(e-1) unless v is an
  // exact power of two (m == 0.5), which belongs one bucket down.
  int exp = 0;
  double mantissa = std::frexp(value / kMinBound, &exp);
  int bucket = mantissa == 0.5 ? exp - 1 : exp;
  if (bucket < 0) bucket = 0;
  if (bucket >= kNumBuckets) bucket = kNumBuckets - 1;
  return bucket;
}

uint64_t Histogram::Count() const {
  uint64_t total = 0;
  for (const Stripe& stripe : stripes_) {
    for (const auto& bucket : stripe.buckets) {
      total += bucket.load(std::memory_order_relaxed);
    }
  }
  return total;
}

double Histogram::Sum() const {
  uint64_t milli = 0;
  for (const Stripe& stripe : stripes_) {
    milli += stripe.sum_milli.load(std::memory_order_relaxed);
  }
  return static_cast<double>(milli) / 1000.0;
}

std::array<uint64_t, Histogram::kNumBuckets> Histogram::BucketCounts() const {
  std::array<uint64_t, kNumBuckets> counts{};
  for (const Stripe& stripe : stripes_) {
    for (int b = 0; b < kNumBuckets; ++b) {
      counts[b] += stripe.buckets[b].load(std::memory_order_relaxed);
    }
  }
  return counts;
}

double Histogram::Percentile(double p) const {
  std::array<uint64_t, kNumBuckets> counts = BucketCounts();
  uint64_t total = 0;
  for (uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  if (p <= 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const uint64_t rank =
      static_cast<uint64_t>(std::ceil(p * static_cast<double>(total)));
  uint64_t cumulative = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    cumulative += counts[b];
    if (cumulative >= rank) return UpperBound(b);
  }
  return UpperBound(kNumBuckets - 1);
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = gauges_[name];
  if (slot == nullptr) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  MetricsSnapshot snap;
  snap.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snap.counters.emplace_back(name, counter->value());
  }
  snap.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snap.gauges.emplace_back(name, gauge->value());
  }
  snap.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    MetricsSnapshot::HistogramView view;
    view.name = name;
    const auto counts = histogram->BucketCounts();
    for (int b = 0; b < Histogram::kNumBuckets; ++b) {
      view.count += counts[b];
      if (counts[b] > 0) {
        view.buckets.emplace_back(Histogram::UpperBound(b), counts[b]);
      }
    }
    view.sum = histogram->Sum();
    view.p50 = histogram->Percentile(0.50);
    view.p95 = histogram->Percentile(0.95);
    view.p99 = histogram->Percentile(0.99);
    snap.histograms.push_back(std::move(view));
  }
  return snap;
}

std::string ShardLabel(const std::string& name, uint32_t shard) {
  return name + "{shard=" + std::to_string(shard) + "}";
}

}  // namespace obs
}  // namespace dynamicc
