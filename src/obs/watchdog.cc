#include "obs/watchdog.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "util/logging.h"

namespace dynamicc {
namespace obs {

Watchdog::Watchdog(MetricsRegistry* registry, Tracer* tracer)
    : registry_(registry), tracer_(tracer) {
  alerts_active_gauge_ = registry_->GetGauge("obs.alerts_active");
  alerts_fired_counter_ = registry_->GetCounter("obs.alerts_fired");
  ticks_counter_ = registry_->GetCounter("obs.watchdog_ticks");
  alerts_active_gauge_->Set(0.0);
}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::AddRule(Rule rule) {
  std::lock_guard<std::mutex> lock(mutex_);
  RuleState state;
  state.rule = std::move(rule);
  rules_.push_back(std::move(state));
}

void Watchdog::Emit(const char* span_name, const RuleState& state,
                    double value) {
  DYNAMICC_LOG(Warning) << "watchdog " << span_name << " alert="
                        << state.rule.name << " metric=" << state.rule.metric
                        << " value=" << value
                        << " fire_above=" << state.rule.fire_above
                        << " clear_below=" << state.rule.clear_below;
  if (tracer_ != nullptr) {
    TraceSpan span;
    span.name = span_name;
    span.shard = kServiceShard;
    span.start_ns = tracer_->NowNs();
    span.duration_ns = 0;
    tracer_->Record(span);
  }
}

void Watchdog::Tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++tick_;
  ticks_counter_->Add(1);
  uint64_t active = 0;
  for (RuleState& state : rules_) {
    double value = 0.0;
    if (state.rule.kind == Rule::Kind::kGauge) {
      value = registry_->GetGauge(state.rule.metric)->value();
    } else {
      const uint64_t now = registry_->GetCounter(state.rule.metric)->value();
      // The first tick only baselines: a counter that accumulated
      // before the watchdog attached is history, not a breach.
      value = state.has_last ? static_cast<double>(now - state.last_counter)
                             : 0.0;
      state.last_counter = now;
      state.has_last = true;
    }
    if (!state.active) {
      const bool cooled =
          !state.has_cleared ||
          tick_ - state.cleared_tick >= state.rule.cooldown_ticks;
      if (value > state.rule.fire_above && cooled) {
        state.active = true;
        ++fired_total_;
        alerts_fired_counter_->Add(1);
        Emit(kSpanAlertFire, state, value);
      }
    } else if (value < state.rule.clear_below) {
      state.active = false;
      state.has_cleared = true;
      state.cleared_tick = tick_;
      Emit(kSpanAlertClear, state, value);
    }
    if (state.active) ++active;
  }
  alerts_active_gauge_->Set(static_cast<double>(active));
}

void Watchdog::Start(int interval_ms) {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (started_) return;
    started_ = true;
    stop_requested_ = false;
  }
  thread_ = std::thread([this, interval_ms] {
    std::unique_lock<std::mutex> lock(wake_mutex_);
    while (!stop_requested_) {
      lock.unlock();
      Tick();
      lock.lock();
      wake_cv_.wait_for(lock, std::chrono::milliseconds(interval_ms),
                        [this] { return stop_requested_; });
    }
  });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mutex_);
    if (!started_) return;
    stop_requested_ = true;
  }
  wake_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(wake_mutex_);
  started_ = false;
}

std::vector<std::string> Watchdog::ActiveAlerts() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  for (const RuleState& state : rules_) {
    if (state.active) names.push_back(state.rule.name);
  }
  std::sort(names.begin(), names.end());
  return names;
}

uint64_t Watchdog::alerts_active() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t active = 0;
  for (const RuleState& state : rules_) {
    if (state.active) ++active;
  }
  return active;
}

uint64_t Watchdog::alerts_fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return fired_total_;
}

}  // namespace obs
}  // namespace dynamicc
