#ifndef DYNAMICC_OBS_TRACE_H_
#define DYNAMICC_OBS_TRACE_H_

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/logging.h"

namespace dynamicc {
namespace obs {

/// Epoch-scoped tracing: every phase of an operation's life through the
/// service — admission, queue wait, drain-batch apply, dynamic round,
/// epoch seal, delta ship, follower replay, migration quiesce/surgery —
/// is recorded as a span stamped with steady_clock ticks, the epoch it
/// belongs to, the shard it ran on and the operation-log sequence range
/// it covers. Spans land in bounded per-shard ring buffers (oldest
/// overwritten first, drops counted), so a tracer attached to a
/// long-running service holds the recent past at a fixed memory cost
/// and can be flushed at any time as Chrome-trace JSON (exporter.h;
/// load the file in chrome://tracing or https://ui.perfetto.dev).

/// Canonical span names. Anything `const char*` with static lifetime
/// works; these are the ones the service stack emits (one row each in
/// docs/metrics.md).
inline constexpr const char* kSpanIngestAdmit = "ingest.admit";
inline constexpr const char* kSpanQueueWait = "queue.wait";
inline constexpr const char* kSpanDrainApply = "drain.apply";
inline constexpr const char* kSpanWorkerRound = "worker.round";
inline constexpr const char* kSpanObserveRound = "barrier.observe";
inline constexpr const char* kSpanDynamicRound = "barrier.dynamic";
inline constexpr const char* kSpanEpochSeal = "epoch.seal";
inline constexpr const char* kSpanDeltaShip = "delta.ship";
inline constexpr const char* kSpanFollowerReplay = "follower.replay";
inline constexpr const char* kSpanMigrationQuiesce = "migration.quiesce";
inline constexpr const char* kSpanMigrationSurgery = "migration.surgery";
inline constexpr const char* kSpanSnapshotSave = "snapshot.save";
inline constexpr const char* kSpanSnapshotLoad = "snapshot.load";
inline constexpr const char* kSpanReadPublish = "read.publish";
inline constexpr const char* kSpanRpcClient = "rpc.client";
inline constexpr const char* kSpanAlertFire = "alert.fire";
inline constexpr const char* kSpanAlertClear = "alert.clear";

/// Shard value for spans that belong to the service as a whole
/// (admission, barriers, seals); they land in the tracer's extra ring.
inline constexpr uint32_t kServiceShard = 0xffffffffu;

/// Distributed-trace identity. A context originates at the edge (the
/// NetClient mints a fresh trace id per RPC) and rides the wire in the
/// kTraced envelope; every span opened while a context is ambient on
/// the thread inherits the trace id and parents itself on the nearest
/// enclosing span, so one trace id stitches client → server handler →
/// shard drain across processes in the Chrome-trace export.
struct TraceContext {
  uint64_t trace_id = 0;  // 0 = no context
  uint64_t parent_span_id = 0;
  bool sampled = true;

  bool active() const { return trace_id != 0; }
};

/// Process-unique non-zero ids (splitmix64 over an atomic counter
/// seeded from the clock, so two processes in a fleet do not collide).
uint64_t NextTraceId();
uint64_t NextSpanId();

/// The calling thread's ambient trace context (inactive by default).
TraceContext CurrentTraceContext();
void SetCurrentTraceContext(const TraceContext& context);

/// RAII ambient-context scope: installs `context` for the thread,
/// restores the previous context on destruction.
class ScopedTraceContext {
 public:
  explicit ScopedTraceContext(const TraceContext& context)
      : prev_(CurrentTraceContext()) {
    SetCurrentTraceContext(context);
  }
  ~ScopedTraceContext() { SetCurrentTraceContext(prev_); }

  ScopedTraceContext(const ScopedTraceContext&) = delete;
  ScopedTraceContext& operator=(const ScopedTraceContext&) = delete;

 private:
  TraceContext prev_;
};

struct TraceSpan {
  /// Static-lifetime name (one of the kSpan* constants, typically).
  const char* name = "";
  uint32_t shard = kServiceShard;
  uint64_t epoch = 0;
  /// Operation-log sequence range the span covers, [begin, end); both 0
  /// when the span is not tied to log positions.
  uint64_t seq_begin = 0;
  uint64_t seq_end = 0;
  /// steady_clock nanoseconds since the tracer was constructed.
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  /// Distributed-trace identity; all zero for spans opened outside a
  /// trace context (the exporter omits the ids from args then).
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
  uint64_t parent_span_id = 0;
};

/// One ring per shard plus one for service-wide spans. Record() takes
/// the owning ring's mutex — uncontended in practice (a shard's spans
/// come from its own worker) and span-grained, never per-operation.
class Tracer {
 public:
  /// `num_shards` shard rings + 1 service ring, each holding up to
  /// `capacity` spans (floored at 1).
  explicit Tracer(uint32_t num_shards, size_t capacity = 4096);

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// steady_clock nanoseconds since construction (what spans stamp).
  uint64_t NowNs() const;

  void Record(const TraceSpan& span);

  /// Every retained span across all rings, ordered by start_ns.
  std::vector<TraceSpan> Spans() const;

  /// Spans overwritten because their ring was full.
  uint64_t dropped() const;

  uint32_t num_shards() const { return num_shards_; }

 private:
  struct Ring {
    mutable std::mutex mutex;
    std::vector<TraceSpan> spans;  // capacity-sized once full
    size_t next = 0;               // wraparound write index
    uint64_t total = 0;            // lifetime Record() count
  };
  Ring& RingFor(uint32_t shard) const;

  const uint32_t num_shards_;
  const size_t capacity_;
  const std::chrono::steady_clock::time_point origin_;
  mutable std::vector<Ring> rings_;
};

/// RAII span: stamps start on construction, records on destruction.
/// A null tracer disables everything (including the log tags), so call
/// sites need no branches. While alive, the span's shard/epoch are also
/// published as this thread's log tags — every DYNAMICC_LOG line
/// emitted inside a traced region carries "[s<shard> e<epoch>]".
class ScopedSpan {
 public:
  ScopedSpan(Tracer* tracer, const char* name, uint32_t shard,
             uint64_t epoch = 0)
      : tracer_(tracer) {
    if (tracer_ == nullptr) return;
    span_.name = name;
    span_.shard = shard;
    span_.epoch = epoch;
    span_.start_ns = tracer_->NowNs();
    prev_tags_ = internal_logging::GetThreadLogTags();
    internal_logging::SetThreadLogTags(
        {shard == kServiceShard ? -1 : static_cast<int64_t>(shard), epoch});
    tagged_ = true;
    // Inherit the thread's ambient trace context: the span joins the
    // trace, and nested spans opened while this one is alive parent on
    // it (the ambient parent is advanced to this span's id).
    TraceContext ambient = CurrentTraceContext();
    if (ambient.active() && ambient.sampled) {
      span_.trace_id = ambient.trace_id;
      span_.parent_span_id = ambient.parent_span_id;
      span_.span_id = NextSpanId();
      prev_context_ = ambient;
      ambient.parent_span_id = span_.span_id;
      SetCurrentTraceContext(ambient);
      context_scoped_ = true;
    }
  }

  ~ScopedSpan() {
    if (tracer_ == nullptr) return;
    if (tagged_) internal_logging::SetThreadLogTags(prev_tags_);
    if (context_scoped_) SetCurrentTraceContext(prev_context_);
    span_.duration_ns = tracer_->NowNs() - span_.start_ns;
    tracer_->Record(span_);
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

  void set_epoch(uint64_t epoch) {
    if (tracer_ == nullptr) return;
    span_.epoch = epoch;
    internal_logging::LogTags tags = internal_logging::GetThreadLogTags();
    tags.epoch = epoch;
    internal_logging::SetThreadLogTags(tags);
  }
  void set_range(uint64_t begin, uint64_t end) {
    span_.seq_begin = begin;
    span_.seq_end = end;
  }

  /// Joins `context` explicitly — for spans opened on a thread other
  /// than the one the context was ambient on (a drain worker adopting
  /// the context stamped at enqueue). No-op for an inactive context or
  /// when the span already joined one via the ambient path.
  void AdoptContext(const TraceContext& context) {
    if (tracer_ == nullptr || !context.active() || !context.sampled) return;
    if (span_.trace_id != 0) return;
    span_.trace_id = context.trace_id;
    span_.parent_span_id = context.parent_span_id;
    span_.span_id = NextSpanId();
  }

  /// The context a child of this span would propagate (inactive when
  /// the span is outside any trace).
  TraceContext context() const {
    TraceContext ctx;
    ctx.trace_id = span_.trace_id;
    ctx.parent_span_id = span_.span_id;
    return ctx;
  }

 private:
  Tracer* tracer_;
  TraceSpan span_;
  bool tagged_ = false;
  bool context_scoped_ = false;
  internal_logging::LogTags prev_tags_;
  TraceContext prev_context_;
};

}  // namespace obs
}  // namespace dynamicc

#endif  // DYNAMICC_OBS_TRACE_H_
