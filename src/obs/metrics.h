#ifndef DYNAMICC_OBS_METRICS_H_
#define DYNAMICC_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace dynamicc {
namespace obs {

/// Process-wide metrics: named counters, gauges and log-scale latency
/// histograms, registered once (mutex-protected, pointer-stable) and
/// recorded into lock-free afterwards. The hot path pays one relaxed
/// atomic add on a thread-striped cache line; everything heavier —
/// totals, percentiles, rendering — happens at read time, off the
/// serving paths. Handles returned by the registry stay valid for the
/// registry's lifetime, so instrumented code resolves its names once at
/// construction and never touches a map again.
///
/// Naming convention (see docs/metrics.md for the full catalogue):
/// dot-separated subsystem.metric, with per-shard instances labelled
/// `name{shard=i}` (ShardLabel below). Counters, gauges and histograms
/// live in separate namespaces: the same name may exist in each.

/// Stripes spread concurrent writers across cache lines; values are
/// summed on read ("per-shard atomics aggregated on read").
inline constexpr size_t kMetricStripes = 8;

/// The stripe this thread records into (stable per thread).
size_t ThreadStripe();

/// Monotone event count. Add() is wait-free: one relaxed fetch_add.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void Add(uint64_t n = 1) {
    stripes_[ThreadStripe()].value.fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over all stripes (monotone, but not a consistent cut under
  /// concurrent writers — fine for monitoring, don't diff two reads
  /// taken mid-burst).
  uint64_t value() const {
    uint64_t total = 0;
    for (const Stripe& stripe : stripes_) {
      total += stripe.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Stripe {
    std::atomic<uint64_t> value{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Last-write-wins instantaneous value (queue depth, epochs behind).
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void Set(double value) { value_.store(value, std::memory_order_relaxed); }
  double value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<double> value_{0.0};
};

/// Fixed-bucket base-2 log-scale histogram. Bucket i covers
/// (UpperBound(i-1), UpperBound(i)] with UpperBound(i) = kMinBound * 2^i;
/// the last bucket absorbs everything larger, and values at or below
/// kMinBound land in bucket 0. With millisecond inputs the range spans
/// 1 µs to ~2.4 hours, and the same geometry serves byte-sized inputs
/// (up to ~8 GiB) without reconfiguration.
///
/// Record() is one relaxed fetch_add on a thread-striped bucket (plus
/// one for the running sum); count, sum and percentiles are derived on
/// read. Percentile(p) returns the upper bound of the bucket holding
/// the rank-⌈p·count⌉ value — a conservative (never understated)
/// estimate whose error is bounded by the 2x bucket width, and which is
/// exact in tests that pin distributions to known buckets.
class Histogram {
 public:
  static constexpr int kNumBuckets = 44;
  static constexpr double kMinBound = 0.001;

  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  /// Upper bound of bucket `b` (kMinBound * 2^b).
  static double UpperBound(int bucket);
  /// The bucket a value lands in.
  static int BucketFor(double value);

  void Record(double value) {
    Stripe& stripe = stripes_[ThreadStripe()];
    stripe.buckets[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    // The sum is kept in micro-units (value * 1000 rounded) so it can
    // live in one integer atomic; Sum() scales back.
    stripe.sum_milli.fetch_add(static_cast<uint64_t>(value * 1000.0 + 0.5),
                               std::memory_order_relaxed);
  }

  uint64_t Count() const;
  double Sum() const;
  /// See class comment; 0.0 on an empty histogram. `p` in (0, 1].
  double Percentile(double p) const;

  /// Aggregated per-bucket counts (index = bucket).
  std::array<uint64_t, kNumBuckets> BucketCounts() const;

 private:
  struct alignas(64) Stripe {
    std::array<std::atomic<uint64_t>, kNumBuckets> buckets{};
    std::atomic<uint64_t> sum_milli{0};
  };
  std::array<Stripe, kMetricStripes> stripes_;
};

/// Point-in-time pull of a whole registry, ready for rendering
/// (exporter.h) or programmatic assertions. Entries are sorted by name,
/// so two snapshots of identical state render identical bytes.
struct MetricsSnapshot {
  struct HistogramView {
    std::string name;
    uint64_t count = 0;
    double sum = 0.0;
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
    /// Non-empty buckets only: (upper bound, count), ascending.
    std::vector<std::pair<double, uint64_t>> buckets;
  };
  std::vector<std::pair<std::string, uint64_t>> counters;
  std::vector<std::pair<std::string, double>> gauges;
  std::vector<HistogramView> histograms;
};

/// Owns every metric registered through it. Get*() registers on first
/// use and returns the existing instance afterwards; the returned
/// pointer never moves or dies before the registry does. Instantiable
/// so tests (and in-process primary/follower pairs) can keep separate
/// books; most callers share Default().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry (what dynamicc_cli exports).
  static MetricsRegistry& Default();

  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  MetricsSnapshot Snapshot() const;

 private:
  mutable std::mutex mutex_;
  // std::map keeps Snapshot() name-sorted for free; registration is
  // construction-time, so lookup cost is irrelevant.
  std::map<std::string, std::unique_ptr<Counter>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>> histograms_;
};

/// Canonical per-shard label: "queue.depth{shard=3}".
std::string ShardLabel(const std::string& name, uint32_t shard);

}  // namespace obs
}  // namespace dynamicc

#endif  // DYNAMICC_OBS_METRICS_H_
