#include "obs/trace.h"

#include <algorithm>
#include <atomic>

namespace dynamicc {
namespace obs {

namespace {

uint64_t SplitMix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

// Seeded from the clock at first use so two processes in a fleet mint
// disjoint id streams; splitmix64 decorrelates consecutive counts.
std::atomic<uint64_t>& IdCounter() {
  static std::atomic<uint64_t> counter{static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count())};
  return counter;
}

uint64_t NextId() {
  uint64_t id =
      SplitMix64(IdCounter().fetch_add(1, std::memory_order_relaxed));
  return id == 0 ? 1 : id;  // 0 means "no trace"
}

thread_local TraceContext g_thread_trace_context;

}  // namespace

uint64_t NextTraceId() { return NextId(); }

uint64_t NextSpanId() { return NextId(); }

TraceContext CurrentTraceContext() { return g_thread_trace_context; }

void SetCurrentTraceContext(const TraceContext& context) {
  g_thread_trace_context = context;
}

Tracer::Tracer(uint32_t num_shards, size_t capacity)
    : num_shards_(num_shards),
      capacity_(std::max<size_t>(1, capacity)),
      origin_(std::chrono::steady_clock::now()),
      rings_(num_shards + 1) {}

uint64_t Tracer::NowNs() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - origin_)
          .count());
}

Tracer::Ring& Tracer::RingFor(uint32_t shard) const {
  // Out-of-range shards (kServiceShard included) share the last ring.
  return rings_[shard < num_shards_ ? shard : num_shards_];
}

void Tracer::Record(const TraceSpan& span) {
  Ring& ring = RingFor(span.shard);
  std::lock_guard<std::mutex> lock(ring.mutex);
  if (ring.spans.size() < capacity_) {
    ring.spans.push_back(span);
  } else {
    ring.spans[ring.next] = span;  // overwrite the oldest
  }
  ring.next = (ring.next + 1) % capacity_;
  ring.total += 1;
}

std::vector<TraceSpan> Tracer::Spans() const {
  std::vector<TraceSpan> all;
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring.mutex);
    // Oldest first: once the ring wrapped, `next` points at the oldest
    // retained span.
    const size_t n = ring.spans.size();
    const size_t start = n < capacity_ ? 0 : ring.next;
    for (size_t i = 0; i < n; ++i) {
      all.push_back(ring.spans[(start + i) % n]);
    }
  }
  std::stable_sort(all.begin(), all.end(),
                   [](const TraceSpan& a, const TraceSpan& b) {
                     return a.start_ns < b.start_ns;
                   });
  return all;
}

uint64_t Tracer::dropped() const {
  uint64_t dropped = 0;
  for (const Ring& ring : rings_) {
    std::lock_guard<std::mutex> lock(ring.mutex);
    dropped += ring.total - ring.spans.size();
  }
  return dropped;
}

}  // namespace obs
}  // namespace dynamicc
