#include "obs/exporter.h"

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace dynamicc {
namespace obs {

namespace {

std::string Quote(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  out.push_back('"');
  for (char c : s) {
    if (c == '"' || c == '\\') out.push_back('\\');
    out.push_back(c);
  }
  out.push_back('"');
  return out;
}

std::string Num(double value) {
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  std::string out(buffer);
  // %g renders integral doubles bare ("3"); that is still valid JSON,
  // but "nan"/"inf" are not — clamp the pathological cases to null.
  if (out.find("nan") != std::string::npos ||
      out.find("inf") != std::string::npos) {
    return "null";
  }
  return out;
}

// ---- Prometheus text format ------------------------------------------

// Prometheus numbers allow NaN/±Inf spellings, unlike JSON.
std::string PromNum(double value) {
  if (std::isnan(value)) return "NaN";
  if (std::isinf(value)) return value > 0 ? "+Inf" : "-Inf";
  char buffer[64];
  std::snprintf(buffer, sizeof(buffer), "%.10g", value);
  return buffer;
}

// Label values escape backslash, double quote and newline.
std::string PromLabelValue(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out.push_back(c);
    }
  }
  return out;
}

// Splits a registry name like "queue.depth{shard=3}" into a sanitized
// Prometheus metric name ("queue_depth") and a rendered label pair
// ("shard=\"3\"", empty when the name carries no label).
void PromName(const std::string& raw, std::string* name, std::string* label) {
  std::string base = raw;
  label->clear();
  const size_t brace = raw.find('{');
  if (brace != std::string::npos && !raw.empty() && raw.back() == '}') {
    base = raw.substr(0, brace);
    const std::string inside = raw.substr(brace + 1, raw.size() - brace - 2);
    const size_t eq = inside.find('=');
    if (eq != std::string::npos) {
      *label = inside.substr(0, eq) + "=\"" +
               PromLabelValue(inside.substr(eq + 1)) + "\"";
    }
  }
  name->clear();
  name->reserve(base.size());
  for (char c : base) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    name->push_back(ok ? c : '_');
  }
  if (name->empty() || (name->front() >= '0' && name->front() <= '9')) {
    name->insert(name->begin(), '_');
  }
}

// One "# TYPE" header per metric family: labeled instances of the same
// base name are adjacent in the sorted snapshot and share one header.
void PromTypeLine(const std::string& name, const char* kind,
                  std::string* last_typed, std::ostringstream* os) {
  if (name == *last_typed) return;
  *os << "# TYPE " << name << " " << kind << "\n";
  *last_typed = name;
}

}  // namespace

std::string RenderMetricsPrometheus(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  std::string name, label, last_typed;
  for (const auto& [raw, value] : snapshot.counters) {
    PromName(raw, &name, &label);
    name += "_total";
    PromTypeLine(name, "counter", &last_typed, &os);
    os << name << (label.empty() ? "" : "{" + label + "}") << " " << value
       << "\n";
  }
  for (const auto& [raw, value] : snapshot.gauges) {
    PromName(raw, &name, &label);
    PromTypeLine(name, "gauge", &last_typed, &os);
    os << name << (label.empty() ? "" : "{" + label + "}") << " "
       << PromNum(value) << "\n";
  }
  for (const MetricsSnapshot::HistogramView& h : snapshot.histograms) {
    PromName(h.name, &name, &label);
    PromTypeLine(name, "histogram", &last_typed, &os);
    const std::string prefix = label.empty() ? "" : label + ",";
    uint64_t cumulative = 0;
    for (const auto& [bound, count] : h.buckets) {
      cumulative += count;
      os << name << "_bucket{" << prefix << "le=\"" << PromNum(bound)
         << "\"} " << cumulative << "\n";
    }
    os << name << "_bucket{" << prefix << "le=\"+Inf\"} " << h.count << "\n";
    os << name << "_sum" << (label.empty() ? "" : "{" + label + "}") << " "
       << PromNum(h.sum) << "\n";
    os << name << "_count" << (label.empty() ? "" : "{" + label + "}") << " "
       << h.count << "\n";
  }
  return os.str();
}

std::string RenderMetricsJson(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << Quote(snapshot.counters[i].first) << ": "
       << snapshot.counters[i].second;
  }
  os << (snapshot.counters.empty() ? "}" : "\n  }");
  os << ",\n  \"gauges\": {";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    os << (i == 0 ? "\n" : ",\n") << "    "
       << Quote(snapshot.gauges[i].first) << ": "
       << Num(snapshot.gauges[i].second);
  }
  os << (snapshot.gauges.empty() ? "}" : "\n  }");
  os << ",\n  \"histograms\": {";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const MetricsSnapshot::HistogramView& h = snapshot.histograms[i];
    os << (i == 0 ? "\n" : ",\n") << "    " << Quote(h.name) << ": {"
       << "\"count\": " << h.count << ", \"sum\": " << Num(h.sum)
       << ", \"p50\": " << Num(h.p50) << ", \"p95\": " << Num(h.p95)
       << ", \"p99\": " << Num(h.p99) << ", \"buckets\": [";
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (b > 0) os << ", ";
      os << "[" << Num(h.buckets[b].first) << ", " << h.buckets[b].second
         << "]";
    }
    os << "]}";
  }
  os << (snapshot.histograms.empty() ? "}" : "\n  }");
  os << "\n}\n";
  return os.str();
}

std::string RenderMetricsCsv(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "kind,name,field,value\n";
  for (const auto& [name, value] : snapshot.counters) {
    os << "counter," << name << ",value," << value << "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    os << "gauge," << name << ",value," << Num(value) << "\n";
  }
  for (const MetricsSnapshot::HistogramView& h : snapshot.histograms) {
    os << "histogram," << h.name << ",count," << h.count << "\n";
    os << "histogram," << h.name << ",sum," << Num(h.sum) << "\n";
    os << "histogram," << h.name << ",p50," << Num(h.p50) << "\n";
    os << "histogram," << h.name << ",p95," << Num(h.p95) << "\n";
    os << "histogram," << h.name << ",p99," << Num(h.p99) << "\n";
  }
  return os.str();
}

std::string RenderChromeTrace(const Tracer& tracer) {
  std::ostringstream os;
  os << "{\"traceEvents\": [";
  bool first = true;
  for (const TraceSpan& span : tracer.Spans()) {
    os << (first ? "\n" : ",\n");
    first = false;
    const uint32_t tid =
        span.shard < tracer.num_shards() ? span.shard : tracer.num_shards();
    os << "  {\"name\": " << Quote(span.name) << ", \"cat\": \"dynamicc\""
       << ", \"ph\": \"X\", \"pid\": 0, \"tid\": " << tid
       << ", \"ts\": " << Num(static_cast<double>(span.start_ns) / 1000.0)
       << ", \"dur\": " << Num(static_cast<double>(span.duration_ns) / 1000.0)
       << ", \"args\": {\"epoch\": " << span.epoch
       << ", \"seq_begin\": " << span.seq_begin
       << ", \"seq_end\": " << span.seq_end;
    if (span.trace_id != 0) {
      // Hex ids stitch cross-process spans: exports from every process
      // in a trace share the trace_id, parent_span_id links the tree.
      char ids[3][20];
      std::snprintf(ids[0], sizeof(ids[0]), "%016llx",
                    static_cast<unsigned long long>(span.trace_id));
      std::snprintf(ids[1], sizeof(ids[1]), "%016llx",
                    static_cast<unsigned long long>(span.span_id));
      std::snprintf(ids[2], sizeof(ids[2]), "%016llx",
                    static_cast<unsigned long long>(span.parent_span_id));
      os << ", \"trace_id\": \"" << ids[0] << "\", \"span_id\": \"" << ids[1]
         << "\", \"parent_span_id\": \"" << ids[2] << "\"";
    }
    os << "}}";
  }
  os << (first ? "" : "\n") << "], \"displayTimeUnit\": \"ms\"}\n";
  return os.str();
}

Status WriteFileAtomic(const std::string& path, const std::string& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream os(tmp, std::ios::binary | std::ios::trunc);
    if (!os) return Status::IoError("cannot open " + tmp);
    os.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    if (!os) return Status::IoError("cannot write " + tmp);
  }
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return Status::IoError("cannot publish " + path + ": " + ec.message());
  }
  return Status::Ok();
}

Status ExportMetrics(const MetricsRegistry& registry,
                     const std::string& path) {
  const MetricsSnapshot snapshot = registry.Snapshot();
  const bool csv =
      path.size() >= 4 && path.compare(path.size() - 4, 4, ".csv") == 0;
  return WriteFileAtomic(
      path, csv ? RenderMetricsCsv(snapshot) : RenderMetricsJson(snapshot));
}

Status ExportTrace(const Tracer& tracer, const std::string& path) {
  return WriteFileAtomic(path, RenderChromeTrace(tracer));
}

}  // namespace obs
}  // namespace dynamicc
