#ifndef DYNAMICC_OBS_EXPORTER_H_
#define DYNAMICC_OBS_EXPORTER_H_

#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/status.h"

namespace dynamicc {
namespace obs {

/// Renders a MetricsSnapshot as one JSON object:
///
///   {"counters": {"name": N, ...},
///    "gauges": {"name": X, ...},
///    "histograms": {"name": {"count": N, "sum": X, "p50": X, "p95": X,
///                            "p99": X, "buckets": [[bound, count], ...]},
///                   ...}}
///
/// Keys are sorted (snapshots are), so identical state renders
/// identical bytes. Metric names never need escaping beyond quotes —
/// the catalogue sticks to [a-z0-9._{}=]+ — but quoting is applied
/// regardless.
std::string RenderMetricsJson(const MetricsSnapshot& snapshot);

/// CSV with one row per scalar: `kind,name,field,value`. Counters and
/// gauges use field "value"; histograms emit count/sum/p50/p95/p99 rows.
std::string RenderMetricsCsv(const MetricsSnapshot& snapshot);

/// Prometheus text exposition format (version 0.0.4) over the same
/// snapshot the JSON renderer sees. Dots in metric names become
/// underscores, a `{key=value}` suffix (obs::ShardLabel) becomes a real
/// label with the value escaped, counters gain the `_total` suffix, and
/// histograms render cumulative `_bucket{le=...}` series (closing with
/// `le="+Inf"`) plus `_sum`/`_count`. No timestamps, names sorted as in
/// the snapshot — identical state renders identical bytes, so a remote
/// MetricsScrape is byte-comparable to a local render.
std::string RenderMetricsPrometheus(const MetricsSnapshot& snapshot);

/// Renders a tracer's retained spans in Chrome-trace format (the
/// "traceEvents" JSON chrome://tracing and Perfetto load): one complete
/// ("ph":"X") event per span, ts/dur in microseconds, tid = shard
/// (num_shards for service-wide spans), epoch and sequence range in
/// args.
std::string RenderChromeTrace(const Tracer& tracer);

/// Writes `bytes` to `path` via a sibling ".tmp" and an atomic rename,
/// so a concurrent reader (or a crash) never sees a torn export.
Status WriteFileAtomic(const std::string& path, const std::string& bytes);

/// Snapshot + render + atomic write in one call. Format by extension:
/// ".csv" renders CSV, everything else JSON.
Status ExportMetrics(const MetricsRegistry& registry,
                     const std::string& path);

/// Chrome-trace flush of everything the tracer retained.
Status ExportTrace(const Tracer& tracer, const std::string& path);

}  // namespace obs
}  // namespace dynamicc

#endif  // DYNAMICC_OBS_EXPORTER_H_
