// SLO watchdog: a small rule engine over the metrics registry.
//
// Each rule watches one gauge (or the per-tick increase of one
// counter) against a breach threshold with hysteresis and a re-fire
// cooldown: an alert fires when the value exceeds `fire_above`, stays
// active until the value drops below `clear_below`, and after clearing
// will not re-fire for `cooldown_ticks` evaluations — so a value
// oscillating around the threshold produces one alert, not a storm.
//
// Firing and clearing emit a structured DYNAMICC_LOG line and a
// zero-duration trace event (kSpanAlertFire / kSpanAlertClear) on the
// service ring, and the active-alert count is published as the
// `obs.alerts_active` gauge — which is what the Health RPC reports, so
// a fleet's SLO state is scrapeable over the same socket as its
// metrics.
//
// Tick() is the engine; call it from any cadence you like (the
// follower ticks after every catch-up pass so staleness breaches are
// evaluated exactly when the lag gauge moves), or Start() a background
// thread for wall-clock cadence. Thread-safe.
#ifndef DYNAMICC_OBS_WATCHDOG_H_
#define DYNAMICC_OBS_WATCHDOG_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace dynamicc {
namespace obs {

class Watchdog {
 public:
  struct Rule {
    // Alert name — what ActiveAlerts(), the log line and Health report.
    std::string name;
    // Registry metric to watch.
    std::string metric;
    // kGauge compares the gauge's current value; kCounterDelta compares
    // the counter's increase since the previous Tick().
    enum class Kind { kGauge, kCounterDelta };
    Kind kind = Kind::kGauge;
    // Fires when value > fire_above; clears when value < clear_below.
    // clear_below <= fire_above is the hysteresis band.
    double fire_above = 0.0;
    double clear_below = 0.0;
    // Ticks after a clear before the rule may fire again.
    uint32_t cooldown_ticks = 0;
  };

  // `registry` must outlive the watchdog; `tracer` is optional.
  explicit Watchdog(MetricsRegistry* registry, Tracer* tracer = nullptr);
  ~Watchdog();

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  void AddRule(Rule rule);

  // Evaluates every rule once against the registry's current values.
  void Tick();

  // Background evaluation every `interval_ms`. Stop() (or destruction)
  // joins the thread. Idempotent per Start/Stop pair.
  void Start(int interval_ms);
  void Stop();

  // Names of currently-active alerts, sorted.
  std::vector<std::string> ActiveAlerts() const;
  uint64_t alerts_active() const;
  uint64_t alerts_fired() const;

 private:
  struct RuleState {
    Rule rule;
    bool active = false;
    bool has_last = false;     // kCounterDelta: first tick only baselines
    uint64_t last_counter = 0;
    uint64_t cleared_tick = 0;
    bool has_cleared = false;
  };

  void Emit(const char* span_name, const RuleState& state, double value);

  MetricsRegistry* registry_;
  Tracer* tracer_;
  Gauge* alerts_active_gauge_;
  Counter* alerts_fired_counter_;
  Counter* ticks_counter_;

  mutable std::mutex mutex_;
  std::vector<RuleState> rules_;
  uint64_t tick_ = 0;
  uint64_t fired_total_ = 0;

  std::thread thread_;
  std::mutex wake_mutex_;
  std::condition_variable wake_cv_;
  bool stop_requested_ = false;
  bool started_ = false;
};

}  // namespace obs
}  // namespace dynamicc

#endif  // DYNAMICC_OBS_WATCHDOG_H_
