#include "service/read_view.h"

#include <algorithm>
#include <numeric>

#include "obs/metrics.h"
#include "util/logging.h"

namespace dynamicc {

// ---------------------------------------------------------------------------
// ReadView

const ReadClusterInfo* ReadView::ClusterOf(ObjectId global_id) const {
  size_t slot = static_cast<size_t>(global_id);
  if (slot >= cluster_of_.size()) return nullptr;
  const Entry& entry = cluster_of_[slot];
  if (entry.shard == kNoShard) return nullptr;
  return &slices_[entry.shard]->clusters[entry.index];
}

const ReadViewSlice& ReadView::Slice(uint32_t shard) const {
  static const ReadViewSlice kEmpty;
  if (shard >= slices_.size() || slices_[shard] == nullptr) return kEmpty;
  return *slices_[shard];
}

std::vector<std::vector<ObjectId>> ReadView::CanonicalClusters() const {
  std::vector<std::vector<ObjectId>> out;
  out.reserve(clusters_.size());
  for (const ReadClusterInfo* cluster : clusters_) {
    out.push_back(cluster->members);
  }
  return out;
}

std::vector<ReadView::Neighbor> ReadView::KNearestClusters(const Record& probe,
                                                           size_t k) const {
  std::vector<Neighbor> out;
  if (k == 0 || clusters_.empty() || measure_ == nullptr ||
      features_ == nullptr) {
    return out;
  }
  RecordFeatures probe_features;
  features_->BuildQuery(probe, &probe_features);
  std::vector<double> scores(candidates_.size(), 0.0);
  // min_similarity 0 forces exact scores for every representative (the
  // SimilarityBatch threshold contract) — ranking needs them all.
  measure_->SimilarityBatch(probe, &probe_features, candidates_.data(),
                            candidates_.size(), 0.0, scores.data());
  std::vector<uint32_t> order(candidates_.size());
  std::iota(order.begin(), order.end(), 0u);
  k = std::min(k, order.size());
  std::partial_sort(order.begin(), order.begin() + k, order.end(),
                    [&scores](uint32_t a, uint32_t b) {
                      if (scores[a] != scores[b]) return scores[a] > scores[b];
                      return a < b;  // ties: canonical cluster order
                    });
  out.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    out.push_back(Neighbor{clusters_[order[i]], scores[order[i]]});
  }
  return out;
}

// ---------------------------------------------------------------------------
// ReadViewBuilder

ReadViewBuilder::ReadViewBuilder(const ReadView* prev, uint32_t num_shards,
                                 uint64_t epoch, uint64_t sequence)
    : prev_(prev), view_(new ReadView()), fresh_(num_shards, 0) {
  if (prev_ != nullptr) {
    DYNAMICC_CHECK(prev_->num_shards() == num_shards)
        << "shard count changed across views: " << prev_->num_shards()
        << " -> " << num_shards;
  }
  view_->epoch_ = epoch;
  view_->sequence_ = sequence;
  view_->slices_.resize(num_shards);
}

bool ReadViewBuilder::NeedsShard(uint32_t shard, uint64_t version) const {
  if (prev_ == nullptr) return true;
  const std::shared_ptr<const ReadViewSlice>& slice = prev_->slices_[shard];
  return slice == nullptr || slice->version != version;
}

void ReadViewBuilder::SetSlice(std::shared_ptr<const ReadViewSlice> slice) {
  uint32_t shard = slice->shard;
  DYNAMICC_CHECK(shard < view_->slices_.size());
  view_->slices_[shard] = std::move(slice);
  fresh_[shard] = 1;
}

std::unique_ptr<const ReadView> ReadViewBuilder::Finish(
    const SimilarityMeasure* measure) {
  ReadView* view = view_.get();
  uint32_t num_shards = static_cast<uint32_t>(view->slices_.size());

  // Graft the untouched slices and seed the id map from the previous
  // view, then patch only the rebuilt shards: first erase the entries
  // the shard's old slice owned, then write the new slice's.
  if (prev_ != nullptr) view->cluster_of_ = prev_->cluster_of_;
  for (uint32_t shard = 0; shard < num_shards; ++shard) {
    if (!fresh_[shard]) {
      DYNAMICC_CHECK(prev_ != nullptr && prev_->slices_[shard] != nullptr)
          << "shard " << shard << " neither rebuilt nor present in prev";
      view->slices_[shard] = prev_->slices_[shard];
      continue;
    }
    if (prev_ != nullptr && prev_->slices_[shard] != nullptr) {
      for (const ReadClusterInfo& cluster : prev_->slices_[shard]->clusters) {
        for (ObjectId member : cluster.members) {
          if (static_cast<size_t>(member) < view->cluster_of_.size()) {
            view->cluster_of_[member] = ReadView::Entry{};
          }
        }
      }
    }
    const ReadViewSlice& slice = *view->slices_[shard];
    for (uint32_t index = 0; index < slice.clusters.size(); ++index) {
      for (ObjectId member : slice.clusters[index].members) {
        size_t slot = static_cast<size_t>(member);
        if (slot >= view->cluster_of_.size()) {
          view->cluster_of_.resize(slot + 1);
        }
        view->cluster_of_[slot] = ReadView::Entry{shard, index};
      }
    }
  }

  // Canonical global order: shard slices are already sorted by first
  // member and clusters are disjoint, so a global sort on the first
  // member reproduces GlobalClusters() exactly.
  size_t total_clusters = 0;
  for (const auto& slice : view->slices_) {
    total_clusters += slice->clusters.size();
  }
  view->clusters_.reserve(total_clusters);
  for (const auto& slice : view->slices_) {
    for (const ReadClusterInfo& cluster : slice->clusters) {
      view->clusters_.push_back(&cluster);
    }
  }
  std::sort(view->clusters_.begin(), view->clusters_.end(),
            [](const ReadClusterInfo* a, const ReadClusterInfo* b) {
              return a->members.front() < b->members.front();
            });

  view->stats_.clusters = view->clusters_.size();
  view->stats_.objects = 0;
  view->stats_.total_intra_sum = 0.0;
  for (const ReadClusterInfo* cluster : view->clusters_) {
    view->stats_.objects += cluster->members.size();
    view->stats_.total_intra_sum += cluster->intra_sum;
  }

  // k-NN table: representative features interned per view. Dense ids
  // follow canonical cluster order, so query results are deterministic
  // for a given view regardless of which shards were rebuilt.
  view->measure_ = measure;
  if (measure != nullptr && !view->clusters_.empty()) {
    view->features_.reset(new FeatureIndex(measure->FeatureNeeds()));
    view->candidates_.resize(view->clusters_.size());
    for (size_t i = 0; i < view->clusters_.size(); ++i) {
      view->features_->Insert(static_cast<ObjectId>(i),
                              view->clusters_[i]->representative);
    }
    // Resolve feature pointers only after every Insert: the index's
    // feature storage may reallocate while it grows.
    for (size_t i = 0; i < view->clusters_.size(); ++i) {
      view->candidates_[i] =
          SimCandidate{&view->clusters_[i]->representative,
                       view->features_->Find(static_cast<ObjectId>(i))};
    }
  }

  prev_ = nullptr;
  return std::unique_ptr<const ReadView>(view_.release());
}

// ---------------------------------------------------------------------------
// ReadPin

ReadPin::ReadPin(ReadPin&& other) noexcept
    : registry_(other.registry_),
      view_(other.view_),
      slot_(other.slot_),
      entry_(other.entry_) {
  other.registry_ = nullptr;
  other.view_ = nullptr;
  other.slot_ = -1;
  other.entry_ = -1;
}

ReadPin& ReadPin::operator=(ReadPin&& other) noexcept {
  if (this != &other) {
    if (registry_ != nullptr && view_ != nullptr) registry_->Release(this);
    registry_ = other.registry_;
    view_ = other.view_;
    slot_ = other.slot_;
    entry_ = other.entry_;
    other.registry_ = nullptr;
    other.view_ = nullptr;
    other.slot_ = -1;
    other.entry_ = -1;
  }
  return *this;
}

ReadPin::~ReadPin() {
  if (registry_ != nullptr && view_ != nullptr) registry_->Release(this);
}

// ---------------------------------------------------------------------------
// ReadViewRegistry

ReadViewRegistry::ReadViewRegistry(obs::MetricsRegistry* metrics) {
  for (Slot& slot : slots_) {
    for (auto& hazard : slot.hazard) {
      hazard.store(nullptr, std::memory_order_relaxed);
    }
  }
  if (metrics != nullptr) {
    published_metric_ = metrics->GetCounter("read.views_published");
    reclaimed_metric_ = metrics->GetCounter("read.views_reclaimed");
    view_epoch_metric_ = metrics->GetGauge("read.view_epoch");
    views_retired_metric_ = metrics->GetGauge("read.views_retired");
  }
}

ReadViewRegistry::~ReadViewRegistry() {
  // Teardown: callers must have released every pin (the service joins
  // its readers before destruction), so everything still held is ours.
  const ReadView* current = current_.exchange(nullptr);
  delete current;
  std::lock_guard<std::mutex> lock(retire_mutex_);
  for (const Retired& retired : retired_) delete retired.view;
  retired_.clear();
}

int ReadViewRegistry::LocalSlotIndex() {
  struct Cached {
    const ReadViewRegistry* registry;
    int slot;
  };
  thread_local std::vector<Cached> cache;
  const std::thread::id self = std::this_thread::get_id();
  Cached* mine = nullptr;
  for (Cached& entry : cache) {
    if (entry.registry == this) {
      // Guard against registry address reuse across lifetimes: the slot
      // is ours only if we still own it.
      if (slots_[entry.slot].owner.load(std::memory_order_relaxed) == self) {
        return entry.slot;
      }
      mine = &entry;
      break;
    }
  }
  for (int i = 0; i < kMaxSlots; ++i) {
    std::thread::id expected{};
    if (slots_[i].owner.load(std::memory_order_relaxed) ==
            std::thread::id{} &&
        slots_[i].owner.compare_exchange_strong(expected, self,
                                                std::memory_order_acq_rel)) {
      if (mine != nullptr) {
        mine->slot = i;
      } else {
        cache.push_back(Cached{this, i});
      }
      return i;
    }
  }
  return -1;
}

ReadPin ReadViewRegistry::Acquire() {
  ReadPin pin;
  int slot_index = LocalSlotIndex();
  if (slot_index >= 0) {
    Slot& slot = slots_[slot_index];
    int entry = -1;
    for (int e = 0; e < kPinsPerSlot; ++e) {
      // Entries of this slot are only ever written by the owning
      // thread, so an empty one stays empty until we take it.
      if (slot.hazard[e].load(std::memory_order_relaxed) == nullptr) {
        entry = e;
        break;
      }
    }
    if (entry >= 0) {
      // The hazard handshake: announce the candidate, then confirm it
      // is still current. seq_cst on both sides orders the announcement
      // against the publisher's post-swap hazard scan, so a view we
      // confirmed can never be freed under us.
      const ReadView* view = current_.load(std::memory_order_acquire);
      while (view != nullptr) {
        slot.hazard[entry].store(view, std::memory_order_seq_cst);
        const ReadView* check = current_.load(std::memory_order_seq_cst);
        if (check == view) break;
        view = check;
      }
      if (view == nullptr) {
        slot.hazard[entry].store(nullptr, std::memory_order_relaxed);
        return pin;
      }
      pin.registry_ = this;
      pin.view_ = view;
      pin.slot_ = slot_index;
      pin.entry_ = entry;
      return pin;
    }
  }
  // Fallback (slot table or per-slot entries exhausted): a refcount
  // under the retire mutex. Correct because reclamation also runs under
  // it — the load and the count bump are atomic w.r.t. any reclaim.
  std::lock_guard<std::mutex> lock(retire_mutex_);
  const ReadView* view = current_.load(std::memory_order_acquire);
  if (view == nullptr) return pin;
  bool found = false;
  for (auto& [pinned, count] : fallback_pins_) {
    if (pinned == view) {
      ++count;
      found = true;
      break;
    }
  }
  if (!found) fallback_pins_.emplace_back(view, 1);
  pin.registry_ = this;
  pin.view_ = view;
  return pin;
}

void ReadViewRegistry::Release(ReadPin* pin) {
  if (pin->slot_ >= 0) {
    slots_[pin->slot_].hazard[pin->entry_].store(nullptr,
                                                 std::memory_order_release);
    return;
  }
  std::lock_guard<std::mutex> lock(retire_mutex_);
  for (auto it = fallback_pins_.begin(); it != fallback_pins_.end(); ++it) {
    if (it->first == pin->view_) {
      if (--it->second == 0) fallback_pins_.erase(it);
      return;
    }
  }
  DYNAMICC_CHECK(false) << "released a fallback pin with no registration";
}

void ReadViewRegistry::Publish(std::unique_ptr<const ReadView> view) {
  DYNAMICC_CHECK(view != nullptr);
  const ReadView* raw = view.release();
  current_epoch_.store(raw->epoch(), std::memory_order_release);
  const ReadView* old = current_.exchange(raw, std::memory_order_seq_cst);
  published_.fetch_add(1, std::memory_order_relaxed);
  if (published_metric_ != nullptr) published_metric_->Add();
  if (view_epoch_metric_ != nullptr) {
    view_epoch_metric_->Set(static_cast<double>(raw->epoch()));
  }
  std::lock_guard<std::mutex> lock(retire_mutex_);
  if (old != nullptr) retired_.push_back(Retired{old, old->epoch()});
  ReclaimLocked();
  if (views_retired_metric_ != nullptr) {
    views_retired_metric_->Set(static_cast<double>(retired_.size()));
  }
}

size_t ReadViewRegistry::Reclaim() {
  std::lock_guard<std::mutex> lock(retire_mutex_);
  size_t freed = ReclaimLocked();
  if (views_retired_metric_ != nullptr) {
    views_retired_metric_->Set(static_cast<double>(retired_.size()));
  }
  return freed;
}

size_t ReadViewRegistry::ReclaimLocked() {
  if (retired_.empty()) return 0;
  std::vector<const ReadView*> protected_views;
  for (const Slot& slot : slots_) {
    for (const auto& hazard : slot.hazard) {
      const ReadView* view = hazard.load(std::memory_order_seq_cst);
      if (view != nullptr) protected_views.push_back(view);
    }
  }
  for (const auto& [view, count] : fallback_pins_) {
    (void)count;
    protected_views.push_back(view);
  }
  const ReadView* current = current_.load(std::memory_order_seq_cst);
  size_t freed = 0;
  auto alive_end = std::remove_if(
      retired_.begin(), retired_.end(),
      [&](const Retired& retired) {
        if (retired.view == current) return false;
        if (std::find(protected_views.begin(), protected_views.end(),
                      retired.view) != protected_views.end()) {
          return false;
        }
        delete retired.view;
        ++freed;
        return true;
      });
  retired_.erase(alive_end, retired_.end());
  if (freed > 0) {
    reclaimed_.fetch_add(freed, std::memory_order_relaxed);
    if (reclaimed_metric_ != nullptr) reclaimed_metric_->Add(freed);
  }
  return freed;
}

size_t ReadViewRegistry::retired_count() const {
  std::lock_guard<std::mutex> lock(retire_mutex_);
  return retired_.size();
}

size_t ReadViewRegistry::live_pins() const {
  std::lock_guard<std::mutex> lock(retire_mutex_);
  size_t pins = 0;
  for (const Slot& slot : slots_) {
    for (const auto& hazard : slot.hazard) {
      if (hazard.load(std::memory_order_seq_cst) != nullptr) ++pins;
    }
  }
  for (const auto& [view, count] : fallback_pins_) {
    (void)view;
    pins += count;
  }
  return pins;
}

}  // namespace dynamicc
