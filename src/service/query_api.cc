#include "service/query_api.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace dynamicc {

QueryClient::QueryClient(const ShardedDynamicCService* service,
                         std::string name)
    : service_(service), name_(std::move(name)) {
  DYNAMICC_CHECK(service_ != nullptr);
  DYNAMICC_CHECK(service_->serves_reads())
      << "QueryClient over a service without Options::read.serve";
}

QueryClient::ClusterOfResult QueryClient::ClusterOfRecord(
    ObjectId global_id) const {
  ClusterOfResult result;
  ReadPin pin = service_->AcquireReadView();
  if (!pin) return result;
  result.info.served = true;
  result.info.epoch = pin->epoch();
  const ReadClusterInfo* cluster = pin->ClusterOf(global_id);
  if (cluster != nullptr) {
    result.members = cluster->members;
    result.avg_intra = cluster->avg_intra;
  }
  return result;
}

QueryClient::NearestResult QueryClient::KNearestClusters(const Record& probe,
                                                         size_t k) const {
  NearestResult result;
  ReadPin pin = service_->AcquireReadView();
  if (!pin) return result;
  result.info.served = true;
  result.info.epoch = pin->epoch();
  for (const ReadView::Neighbor& n : pin->KNearestClusters(probe, k)) {
    NearestResult::Hit hit;
    hit.members = n.cluster->members;
    hit.similarity = n.similarity;
    hit.avg_intra = n.cluster->avg_intra;
    result.hits.push_back(std::move(hit));
  }
  return result;
}

QueryClient::StatsResult QueryClient::Stats() const {
  StatsResult result;
  ReadPin pin = service_->AcquireReadView();
  if (!pin) return result;
  result.info.served = true;
  result.info.epoch = pin->epoch();
  result.stats = pin->stats();
  return result;
}

ReadRouter::ReadRouter(const ShardedDynamicCService* primary, Options options)
    : options_(options) {
  DYNAMICC_CHECK(primary != nullptr);
  Target target{QueryClient(primary, "primary"), /*is_primary=*/true};
  targets_.push_back(std::move(target));
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.metrics;
    queries_metric_ = reg.GetCounter("read.queries");
    admitted_metric_ = reg.GetCounter("read.admitted");
    rejected_metric_ = reg.GetCounter("read.rejected_stale");
    query_ms_metric_ = reg.GetHistogram("read.query_ms");
    staleness_metric_ = reg.GetGauge("read.staleness_epochs");
  }
}

void ReadRouter::AddFollower(const ShardedDynamicCService* follower_service,
                             std::string name) {
  Target target{QueryClient(follower_service, std::move(name)),
                /*is_primary=*/false};
  targets_.push_back(std::move(target));
}

uint64_t ReadRouter::Frontier() const {
  // The primary's newest *published* epoch, not its open epoch: what a
  // fresh read could actually see right now. Followers measure their
  // staleness against this.
  for (const Target& target : targets_) {
    if (target.is_primary) return target.client.view_epoch();
  }
  return 0;
}

const ReadRouter::Target* ReadRouter::AdmitQuery(uint64_t max_staleness_epochs,
                                                 uint64_t* staleness) const {
  const uint64_t bound = max_staleness_epochs == kUnbounded
                             ? options_.max_staleness_epochs
                             : max_staleness_epochs;
  queries_.fetch_add(1, std::memory_order_relaxed);
  if (queries_metric_ != nullptr) queries_metric_->Add(1);
  const uint64_t frontier = Frontier();
  uint64_t best = std::numeric_limits<uint64_t>::max();
  const size_t n = targets_.size();
  // Round-robin start point; one fetch_add per query keeps admissible
  // targets evenly loaded without any lock.
  const size_t start =
      cursor_.fetch_add(1, std::memory_order_relaxed) % std::max<size_t>(n, 1);
  const Target* chosen = nullptr;
  for (size_t i = 0; i < n; ++i) {
    const Target& target = targets_[(start + i) % n];
    const uint64_t view_epoch = target.client.view_epoch();
    const uint64_t lag = frontier > view_epoch ? frontier - view_epoch : 0;
    best = std::min(best, lag);
    if (lag <= bound && chosen == nullptr) {
      chosen = &target;
      *staleness = lag;
    }
  }
  if (chosen == nullptr) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    if (rejected_metric_ != nullptr) rejected_metric_->Add(1);
    *staleness = best;
    return nullptr;
  }
  if (admitted_metric_ != nullptr) admitted_metric_->Add(1);
  if (staleness_metric_ != nullptr) {
    staleness_metric_->Set(static_cast<double>(*staleness));
  }
  return chosen;
}

QueryClient::ClusterOfResult ReadRouter::ClusterOfRecord(
    ObjectId global_id, uint64_t max_staleness_epochs) const {
  ScopedTimer timer;
  timer.Record(query_ms_metric_);
  uint64_t staleness = 0;
  const Target* target = AdmitQuery(max_staleness_epochs, &staleness);
  QueryClient::ClusterOfResult result;
  if (target == nullptr) {
    result.info.staleness = staleness;
    return result;
  }
  result = target->client.ClusterOfRecord(global_id);
  result.info.staleness = staleness;
  return result;
}

QueryClient::NearestResult ReadRouter::KNearestClusters(
    const Record& probe, size_t k, uint64_t max_staleness_epochs) const {
  ScopedTimer timer;
  timer.Record(query_ms_metric_);
  uint64_t staleness = 0;
  const Target* target = AdmitQuery(max_staleness_epochs, &staleness);
  QueryClient::NearestResult result;
  if (target == nullptr) {
    result.info.staleness = staleness;
    return result;
  }
  result = target->client.KNearestClusters(probe, k);
  result.info.staleness = staleness;
  return result;
}

QueryClient::StatsResult ReadRouter::Stats(
    uint64_t max_staleness_epochs) const {
  ScopedTimer timer;
  timer.Record(query_ms_metric_);
  uint64_t staleness = 0;
  const Target* target = AdmitQuery(max_staleness_epochs, &staleness);
  QueryClient::StatsResult result;
  if (target == nullptr) {
    result.info.staleness = staleness;
    return result;
  }
  result = target->client.Stats();
  result.info.staleness = staleness;
  return result;
}

void ReadRouter::DrainFence(uint64_t promoted_last_read_epoch,
                            const ShardedDynamicCService* new_primary) {
  DYNAMICC_CHECK(new_primary != nullptr);
  drain_fence_.store(promoted_last_read_epoch, std::memory_order_release);
  targets_.clear();
  Target target{QueryClient(new_primary, "primary"), /*is_primary=*/true};
  targets_.push_back(std::move(target));
}

}  // namespace dynamicc
