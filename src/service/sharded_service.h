#ifndef DYNAMICC_SERVICE_SHARDED_SERVICE_H_
#define DYNAMICC_SERVICE_SHARDED_SERVICE_H_

#include <functional>
#include <memory>
#include <vector>

#include "batch/batch_algorithm.h"
#include "core/session.h"
#include "data/dataset.h"
#include "data/operations.h"
#include "data/similarity.h"
#include "data/similarity_graph.h"
#include "ml/model.h"
#include "objective/objective.h"
#include "service/service_report.h"
#include "service/shard_router.h"
#include "service/thread_pool.h"

namespace dynamicc {

/// Everything one shard needs that must not be shared across threads:
/// its own measure, blocker, objective/validator, batch algorithm and
/// models. A factory builds one environment per shard, so shards never
/// contend on mutable state and rounds can run fully in parallel.
///
/// `validator` and `batch` may reference `objective`; all four are owned
/// here, so the reference stays valid for the shard's lifetime. For
/// validator-only setups (DBSCAN) leave `objective` null.
struct ShardEnvironment {
  std::unique_ptr<SimilarityMeasure> measure;
  std::unique_ptr<CandidateProvider> blocker;
  double min_similarity = 0.1;
  std::unique_ptr<ObjectiveFunction> objective;
  std::unique_ptr<ChangeValidator> validator;
  std::unique_ptr<BatchAlgorithm> batch;
  std::unique_ptr<BinaryClassifier> merge_model;
  std::unique_ptr<BinaryClassifier> split_model;
};

using ShardEnvironmentFactory = std::function<ShardEnvironment()>;

/// Concurrent serving layer over DynamicC: partitions the record stream
/// across N shards by a pluggable ShardRouter (default: hash of the
/// stable blocking key, data/blocking.h), owns one Dataset /
/// SimilarityGraph / DynamicCSession per shard, and executes training
/// and dynamic rounds across shards concurrently on a fixed thread pool.
///
/// Object ids: callers speak *global* ids (assigned densely by the
/// service in operation order — the exact ids a single shared Dataset
/// would have assigned for the same stream, which keeps sharded output
/// directly comparable to a single-engine run). Each shard's dataset
/// uses its own local ids; the service owns the bidirectional mapping
/// and translates at the boundary.
///
/// Correctness: a round over N shards equals the single-engine round
/// exactly when no similarity edge crosses shards — guaranteed by
/// hash-of-blocking-key routing on blocking-disjoint workloads (see
/// StableShardKey). On other workloads sharding trades cross-shard
/// merges for throughput.
class ShardedDynamicCService {
 public:
  struct Options {
    uint32_t num_shards = 4;
    /// Worker threads for round execution. 0 = one per shard, capped at
    /// the hardware concurrency.
    uint32_t num_threads = 0;
    DynamicCSession::Options session;
  };

  /// `router` may be null (defaults to HashShardRouter). `factory` is
  /// invoked num_shards times, once per shard, at construction.
  ShardedDynamicCService(Options options, std::unique_ptr<ShardRouter> router,
                         ShardEnvironmentFactory factory);

  ShardedDynamicCService(const ShardedDynamicCService&) = delete;
  ShardedDynamicCService& operator=(const ShardedDynamicCService&) = delete;

  /// Routes the batch per shard (adds by router; removes/updates to the
  /// owning shard) and applies each shard's slice concurrently. Returns
  /// the global ids of added/updated objects, in operation order.
  std::vector<ObjectId> ApplyOperations(const OperationBatch& operations);

  /// Runs DynamicCSession::ObserveBatchRound on every non-empty shard
  /// concurrently. `changed` is the output of the preceding
  /// ApplyOperations (global ids; the service translates per shard).
  ServiceReport ObserveBatchRound(const std::vector<ObjectId>& changed);

  /// Runs DynamicCSession::DynamicRound concurrently on every shard that
  /// needs it. A shard sits the round out (participated = false) when it
  /// is empty or *clean* — no operation touched it since its last round.
  /// Skipping clean shards is sound because DynamicC is idempotent at a
  /// fixpoint (re-running changes nothing, §6.4); it is the scheduling
  /// win of sharding: hot-key traffic re-clusters only the shards it
  /// lands on, where a single engine re-scans every cluster. The cost is
  /// that a clean shard's retrain cadence only advances when it serves.
  /// A dirty shard that cannot serve dynamically yet (no evolution steps
  /// from its training slice, or data first routed to it after training)
  /// is served with an observed batch round instead — correct output
  /// now, and its chance to become trained (used_batch in its report).
  ServiceReport DynamicRound(const std::vector<ObjectId>& changed = {});

  /// Current partition in global ids, canonical form (members ascending,
  /// clusters sorted): the union of the per-shard clusterings.
  std::vector<std::vector<ObjectId>> GlobalClusters() const;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  size_t num_threads() const { return pool_.size(); }
  size_t total_objects() const;
  size_t total_clusters() const;
  /// True when every shard that holds objects can serve dynamic rounds.
  bool is_trained() const;

  /// The shard owning a (live or tombstoned) global id.
  uint32_t ShardOfObject(ObjectId global_id) const;
  const DynamicCSession& session(uint32_t shard) const;
  const Dataset& dataset(uint32_t shard) const;
  const ShardRouter& router() const { return *router_; }

 private:
  struct Shard {
    ShardEnvironment env;
    Dataset dataset;
    std::unique_ptr<SimilarityGraph> graph;
    std::unique_ptr<DynamicCSession> session;
    /// Local id -> global id (local ids are dense, so a vector).
    std::vector<ObjectId> global_of_local;
    /// Set when an operation lands on the shard; cleared by rounds.
    bool dirty = false;
  };

  struct ObjectLocation {
    uint32_t shard = 0;
    ObjectId local = kInvalidObject;
  };

  /// Splits `changed` (global ids) into per-shard local-id lists.
  std::vector<std::vector<ObjectId>> LocalizeChanged(
      const std::vector<ObjectId>& changed) const;

  Options options_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// Global id -> owning shard + local id; indexed by global id.
  std::vector<ObjectLocation> locations_;
  ThreadPool pool_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_SHARDED_SERVICE_H_
