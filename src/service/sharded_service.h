#ifndef DYNAMICC_SERVICE_SHARDED_SERVICE_H_
#define DYNAMICC_SERVICE_SHARDED_SERVICE_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "batch/batch_algorithm.h"
#include "core/session.h"
#include "data/dataset.h"
#include "data/operation_log.h"
#include "data/operations.h"
#include "data/similarity.h"
#include "data/similarity_graph.h"
#include "ml/model.h"
#include "objective/objective.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "service/placement.h"
#include "service/read_view.h"
#include "service/rebalancer.h"
#include "service/service_report.h"
#include "service/shard_router.h"
#include "service/thread_pool.h"
#include "util/status.h"

namespace dynamicc {

/// Everything one shard needs that must not be shared across threads:
/// its own measure, blocker, objective/validator, batch algorithm and
/// models. A factory builds one environment per shard, so shards never
/// contend on mutable state and rounds can run fully in parallel.
///
/// `validator` and `batch` may reference `objective`; all four are owned
/// here, so the reference stays valid for the shard's lifetime. For
/// validator-only setups (DBSCAN) leave `objective` null.
struct ShardEnvironment {
  std::unique_ptr<SimilarityMeasure> measure;
  std::unique_ptr<CandidateProvider> blocker;
  double min_similarity = 0.1;
  /// Similarity-core configuration of the shard's graph (indexed batch
  /// kernels vs seed scalar loop, candidate-history mode). The service
  /// injects its own obs registry into the copy it passes to the graph,
  /// so leave `sim_core.metrics` null here.
  SimilarityGraph::Options sim_core;
  std::unique_ptr<ObjectiveFunction> objective;
  std::unique_ptr<ChangeValidator> validator;
  /// Validator-only environments (DBSCAN) leave `validator` null and set
  /// this instead: their validator needs the shard's similarity graph,
  /// which only exists once the service has built the shard, so the
  /// service invokes the factory right after creating the graph. The
  /// returned validator may reference `batch`/`batch_stages` members
  /// (e.g. DbscanValidator holding the Dbscan instance) — they are owned
  /// here, so the reference stays valid for the shard's lifetime.
  std::function<std::unique_ptr<ChangeValidator>(const SimilarityGraph*)>
      validator_factory;
  std::unique_ptr<BatchAlgorithm> batch;
  std::unique_ptr<BinaryClassifier> merge_model;
  std::unique_ptr<BinaryClassifier> split_model;
  /// Optional extra owned state for multi-stage batch pipelines: `batch`
  /// may be a CompositeBatch over `batch_stages`, and a stage may run on
  /// a cheaper `bootstrap_objective` than the task objective (the
  /// db-index environments do both, mirroring the harness: greedy
  /// agglomeration bootstraps on correlation, hill climbing refines on
  /// DB-index). Both live here so their lifetime matches the shard's.
  std::unique_ptr<ObjectiveFunction> bootstrap_objective;
  std::vector<std::unique_ptr<BatchAlgorithm>> batch_stages;
};

using ShardEnvironmentFactory = std::function<ShardEnvironment()>;

/// Hook interface through which the service reports every
/// state-changing decision of its serving protocol, in serialization
/// order — the feed the replication layer (src/replication/) journals
/// into epoch-tagged deltas. A follower that replays the reported
/// admitted batches, migrations and barriers through its own service
/// reproduces the primary's clusterings, models and placement exactly
/// (blocking-disjoint workloads, the regime every equivalence claim in
/// this repository lives in).
///
/// Threading: OnAdmitted, OnEpochSealed and OnMigration are invoked
/// under the service's ingest lock, so they are totally ordered against
/// each other and against admissions. OnBarrier is invoked from the
/// barrier caller's thread before the rounds run; replicated flows keep
/// barriers serialized against producers (the CLI, tests and benches
/// all do), which makes the whole event stream a linearization of the
/// primary's processing. Implementations must not call back into the
/// service from OnAdmitted/OnEpochSealed/OnMigration (the ingest lock
/// is held); OnBarrier may.
class StreamObserver {
 public:
  virtual ~StreamObserver() = default;

  /// Which barrier ran (ObserveBatchRound vs DynamicRound/Flush).
  enum class Barrier { kObserve, kDynamic };

  /// One admitted batch in admission order, passed by value (the sink
  /// owns it — no second copy on the ingest path). Adds carry their
  /// assigned global id in `target` (the same stamping the
  /// operation-log coalescing uses); removes/updates carry global
  /// target ids.
  virtual void OnAdmitted(OperationBatch operations) = 0;

  /// CloseEpoch sealed `epoch`. `pending_tail_ops` counts the sealed
  /// epochs' operations still queued (unapplied) across all shards at
  /// the seal — the primary's replication lag at this boundary.
  virtual void OnEpochSealed(uint64_t epoch, uint64_t pending_tail_ops) = 0;

  /// MigrateGroup published a placement decision (every call, including
  /// no-op moves — each one bumps the placement version).
  virtual void OnMigration(uint64_t group, uint32_t to_shard) = 0;

  /// A barrier is about to run with the given changed-object hints
  /// (global ids; what the barrier's rounds will be seeded with).
  virtual void OnBarrier(Barrier kind,
                         const std::vector<ObjectId>& hints) = 0;
};

/// What a full shard queue does to an Ingest call in async mode.
enum class BackpressurePolicy {
  /// Wait until the shard's worker drains enough space (never drops).
  kBlock,
  /// Turn the whole batch away — no ids assigned, nothing enqueued —
  /// and report it in IngestStats. Load-shedding for latency-bound
  /// producers: an admitted batch never stalls, and a batch is only
  /// rejected while the target shard has backlog (an idle shard admits
  /// any batch, transiently exceeding the depth, so retries always
  /// make progress).
  kReject,
};

/// Concurrent serving layer over DynamicC: partitions the record stream
/// across N shards by blocking group, owns one Dataset / SimilarityGraph
/// / DynamicCSession per shard, and executes training and dynamic rounds
/// across shards concurrently on a fixed thread pool.
///
/// Placement is dynamic: a versioned PlacementTable maps blocking groups
/// to shards (copy-on-write, one pinned version per ingested batch) with
/// the pluggable ShardRouter (default: hash of the stable blocking key,
/// data/blocking.h) as the fallback for groups never moved. Hot groups
/// migrate between shards live — records, cluster memberships and
/// similarity aggregates carried over, no retraining — either manually
/// (MigrateGroup) or through the load-aware Rebalancer
/// (RebalanceOnce / Options::rebalance.every_rounds).
///
/// Object ids: callers speak *global* ids, assigned densely in arrival
/// order at the ingestion boundary — the exact ids a single shared
/// Dataset would have assigned for the same stream, which keeps sharded
/// output directly comparable to a single-engine run. Id assignment is
/// split from application: each shard's dataset assigns its own local
/// ids when (possibly later, on a worker) its slice is applied; the
/// service owns the bidirectional mapping and translates at the
/// boundary.
///
/// Ingestion modes:
///
///  - **Synchronous** (default): ApplyOperations routes the batch and
///    applies each shard's slice concurrently (fork-join) before
///    returning; rounds are driven explicitly by the caller.
///  - **Async pipelined** (`Options::async.enabled`): ApplyOperations /
///    Ingest only *enqueue* — each shard has a bounded MPSC queue (an
///    OperationLog, so queued work coalesces before it is paid for) and
///    a long-lived background worker that drains the queue into batches,
///    applies them, and runs dynamic rounds continuously. Ingest and
///    re-clustering overlap; a full queue blocks or rejects per
///    `Options::async.backpressure`. Reading state goes through the
///    Flush()/Drain() barriers or a Snapshot() at a consistent cut.
///
/// Training still uses explicit barriers in both modes: while the
/// caller drives ObserveBatchRound barriers, async mode merely defers
/// application (workers never round), so every training barrier —
/// however many there are — sees exactly the engine state the
/// synchronous path would have, and the models come out identical. The
/// first explicit DynamicRound()/Flush() afterwards is the transition
/// into the serving phase: from then on the background workers run
/// dynamic rounds continuously (until the next observe, which returns
/// the service to barrier-driven mode, e.g. for a long-run accuracy
/// refresh). A shard that first receives data after training (so it is
/// itself untrained) accumulates its changes and is served with a
/// batch-fallback round at the next Flush(), which is also its
/// training opportunity.
///
/// Correctness: at any flush barrier, a round over N shards equals the
/// single-engine round exactly when no similarity edge crosses shards —
/// guaranteed by hash-of-blocking-key routing on blocking-disjoint
/// workloads (see StableShardKey). On other workloads sharding trades
/// cross-shard merges for throughput.
class ShardedDynamicCService {
 public:
  struct AsyncOptions {
    /// Enable pipelined ingestion (bounded queues + background workers).
    bool enabled = false;
    /// Per-shard backlog bound in pending (post-coalescing) operations;
    /// floored at 1. kBlock meters producers against it op-by-op;
    /// kReject sheds batches that would grow an existing backlog past
    /// it (a single batch may transiently exceed it on an idle shard).
    size_t queue_depth = 4096;
    BackpressurePolicy backpressure = BackpressurePolicy::kBlock;
    /// Most operations a worker applies per drained batch before it
    /// runs a round (0 = drain everything queued). Bounds worst-case
    /// round latency under sustained ingest. With adaptive_batch this
    /// is the ceiling of the adaptive bite instead (0 = queue_depth).
    size_t max_batch = 0;
    /// AIMD adaptation of the per-round drain bite, per shard: a round
    /// slower than target_round_ms halves the shard's bite
    /// (multiplicative decrease, keeps latency-sensitive shards
    /// responsive); a fast round with backlog still waiting grows it by
    /// min_batch (additive increase, lets bursty shards take bigger
    /// bites and amortize the per-round fixed cost). Bounded to
    /// [min_batch, max_batch or queue_depth].
    bool adaptive_batch = false;
    double target_round_ms = 4.0;
    size_t min_batch = 16;
  };

  /// Automatic placement maintenance.
  struct RebalanceOptions {
    /// 0 = manual rebalancing only (RebalanceOnce()). K > 0 runs a
    /// rebalance pass after every K explicit dynamic barriers
    /// (DynamicRound / Flush).
    uint32_t every_rounds = 0;
    Rebalancer::Options policy;
  };

  /// Observability hooks (src/obs/). Both null by default — the
  /// compiled-in-but-idle state, where every instrumentation site costs
  /// a pointer test (the overhead guard in bench_sharded_throughput
  /// pins the enabled cost at <2% records/sec). Neither is owned; both
  /// must outlive the service. Two services sharing one registry pool
  /// their counters — give an in-process follower its own registry when
  /// the books must stay separate.
  struct ObsOptions {
    obs::MetricsRegistry* metrics = nullptr;
    obs::Tracer* tracer = nullptr;
  };

  /// Epoch-pinned read serving (service/read_view.h). With `serve` on,
  /// the service publishes an immutable ReadView behind an RCU-style
  /// pointer on every sealed epoch whose operations are fully applied,
  /// and at every dynamic barrier — readers pin it with one
  /// acquire-load and query lock-free while ingest keeps draining.
  struct ReadOptions {
    bool serve = false;
  };

  struct Options {
    uint32_t num_shards = 4;
    /// Worker threads. 0 = one per shard, capped at the hardware
    /// concurrency. In async mode shard s's drain worker is pinned to
    /// thread s % num_threads.
    uint32_t num_threads = 0;
    DynamicCSession::Options session;
    AsyncOptions async;
    RebalanceOptions rebalance;
    ObsOptions obs;
    ReadOptions read;
  };

  /// Outcome of one Ingest call. `accepted` is false only in async mode
  /// under the kReject policy when a shard queue had no room for the
  /// batch; a rejected batch assigns no ids and enqueues nothing.
  struct IngestResult {
    bool accepted = true;
    /// Global ids of added/updated objects, in operation order (what
    /// the single-engine session would report as changed).
    std::vector<ObjectId> changed;
  };

  /// `router` may be null (defaults to HashShardRouter). `factory` is
  /// invoked num_shards times, once per shard, at construction.
  ShardedDynamicCService(Options options, std::unique_ptr<ShardRouter> router,
                         ShardEnvironmentFactory factory);

  ShardedDynamicCService(const ShardedDynamicCService&) = delete;
  ShardedDynamicCService& operator=(const ShardedDynamicCService&) = delete;

  /// Async mode: waits for queues to drain, then stops the workers.
  /// External producers must stop ingesting before destruction.
  ~ShardedDynamicCService() = default;

  /// Admits a batch under the configured backpressure policy. Sync mode:
  /// routes per shard (adds by router; removes/updates to the owning
  /// shard) and applies each slice concurrently before returning. Async
  /// mode: assigns global ids, enqueues per shard, and returns — the
  /// background workers apply and round later. Thread-safe (multiple
  /// producers may ingest concurrently; ids stay dense in admission
  /// order).
  IngestResult Ingest(const OperationBatch& operations);

  /// Ingest under the kBlock policy regardless of configuration — never
  /// rejects. Returns the global ids of added/updated objects.
  std::vector<ObjectId> ApplyOperations(const OperationBatch& operations);

  /// Runs DynamicCSession::ObserveBatchRound on every non-empty shard
  /// concurrently. `changed` is the output of the preceding
  /// ApplyOperations (global ids; the service translates per shard). In
  /// async mode the service drained the queues first and uses its own
  /// precise record of applied-but-unrounded objects instead of
  /// `changed`. Requires ingest quiescence (a training barrier).
  ServiceReport ObserveBatchRound(const std::vector<ObjectId>& changed);

  /// Runs DynamicCSession::DynamicRound concurrently on every shard that
  /// needs it. A shard sits the round out (participated = false) when it
  /// is empty or *clean* — no operation touched it since its last round.
  /// Skipping clean shards is sound because DynamicC is idempotent at a
  /// fixpoint (re-running changes nothing, §6.4); it is the scheduling
  /// win of sharding: hot-key traffic re-clusters only the shards it
  /// lands on, where a single engine re-scans every cluster. The cost is
  /// that a clean shard's retrain cadence only advances when it serves.
  /// A dirty shard that cannot serve dynamically yet (no evolution steps
  /// from its training slice, or data first routed to it after training)
  /// is served with an observed batch round instead — correct output
  /// now, and its chance to become trained (used_batch in its report).
  ///
  /// In async mode this is the flush barrier's second half: queues are
  /// drained first, and only shards the background workers left dirty
  /// (untrained ones) still serve here.
  ServiceReport DynamicRound(const std::vector<ObjectId>& changed = {});

  /// Async barrier, step 1: blocks until every queued operation has been
  /// applied by the background workers. Does not run rounds. No-op in
  /// sync mode.
  void Drain();

  /// Async barrier, step 2 (= Drain + DynamicRound): after Flush()
  /// returns, every admitted operation is applied *and* covered by a
  /// round — the state readable via GlobalClusters()/Snapshot() is what
  /// the synchronous path would have produced at this point in the
  /// stream. The returned report covers the final serving pass and
  /// carries cumulative IngestStats.
  ServiceReport Flush();

  // ------------------------------------------------- epoch-tagged flushes

  /// Ingestion is divided into *flush epochs*: every admitted batch
  /// belongs to the epoch that was open when it was admitted, and
  /// CloseEpoch() seals the current epoch (recording, per shard, how far
  /// into its operation log the epoch reaches). A closed epoch is
  /// *applied* on a shard once the shard's drain worker has applied all
  /// of its operations; Flush(epoch) waits for exactly that prefix on
  /// every shard — no full quiescence, and queue contents admitted in
  /// later epochs are not drained. This is the consistency point the
  /// old global barrier over-delivered on: readers that need "everything
  /// up to here" no longer wait out traffic that arrived after "here",
  /// and under sustained ingest Flush(epoch) returns where Flush()
  /// would chase the producers forever. MigrateGroup transfers a moved
  /// group's epoch obligations to the destination shard's log, so
  /// watermarks stay sound across live migrations.

  /// The epoch currently open for admissions (>= 1).
  uint64_t open_epoch() const { return open_epoch_.load(); }

  /// Seals the current epoch and returns its number. Admissions after
  /// this call belong to the next epoch. Epoch numbers are dense from 1,
  /// so two services fed the same barrier sequence agree on them.
  uint64_t CloseEpoch();

  /// Blocks until every shard has applied every operation admitted in
  /// epochs <= `epoch` (which must be closed). Does not run rounds and
  /// does not drain later-epoch queue contents.
  void WaitEpoch(uint64_t epoch);

  /// Epoch-tagged flush barrier: WaitEpoch(epoch), then one serving pass
  /// over the shards still dirty (in async serving mode the background
  /// workers already rounded every trained shard as part of applying the
  /// epoch). After it returns, the clustering reflects at least every
  /// operation of epochs <= `epoch` — later-epoch operations may still
  /// be queued, which is the point: the barrier's latency is bounded by
  /// the epoch's own backlog, not by whatever arrived since.
  ServiceReport Flush(uint64_t epoch);

  // ------------------------------------------------------ durable snapshots

  /// Serializes the full serving state into `dir` (created if needed) as
  /// one versioned, checksummed snapshot: per-shard datasets, id-exact
  /// clusterings, trained models + trainer sample sets + session
  /// cadence state, the global<->local id maps, cumulative IngestStats,
  /// and the PlacementTable (version + overrides, stable BlockingKeyHash
  /// keys). Taken at an epoch boundary: producers are excluded, the
  /// current epoch is closed and applied everywhere, then state is
  /// written — so the snapshot is exactly "the service at epoch E", and
  /// E is recorded in the manifest. Safe to call between barriers of a
  /// live service; concurrent Ingest calls block for the duration.
  Status SaveSnapshot(const std::string& dir);

  /// Restores a snapshot written by SaveSnapshot into this service,
  /// which must be freshly constructed (same num_shards and a factory
  /// producing the same environment/model types) and must not have
  /// admitted any operation. After it returns the service serves from
  /// the saved epoch: same placement version, same models (no
  /// retraining), same id assignment — feeding it the operations the
  /// saved service would have received next produces byte-identical
  /// assignments and placement versions. Rejects corrupted, truncated
  /// or version-mismatched snapshots (checksums in the manifest).
  Status LoadSnapshot(const std::string& dir);

  /// Consistent cut: every shard observed at a round boundary, with the
  /// partition, per-shard sizes, and cumulative pipeline counters. Safe
  /// to call concurrently with ingestion (it briefly pauses each shard's
  /// worker between rounds).
  ServiceSnapshot Snapshot() const;

  // ------------------------------------------- dynamic placement control

  /// Outcome of one group migration. `moved` is false when the group had
  /// nothing to move (unknown, empty, or already on `to`) — the
  /// placement override is still recorded so future adds land on `to`.
  struct MigrationReport {
    uint64_t group = 0;
    uint32_t from = 0;
    uint32_t to = 0;
    bool moved = false;
    /// Alive records carried over, and the clusters they arrived in.
    size_t objects = 0;
    size_t clusters = 0;
    /// Queued (async) operations that raced the move: extracted from
    /// the source shard's log by OperationLog sequence number and
    /// replayed onto the destination's log, order preserved.
    size_t replayed_ops = 0;
    /// Placement version published by this migration.
    uint64_t placement_version = 0;
    /// The flush epoch: every source-shard operation with a sequence
    /// number below source_epoch was either applied before the move or
    /// replayed to the destination; dest_epoch is the destination log's
    /// sequence after the replay appended.
    uint64_t source_epoch = 0;
    uint64_t dest_epoch = 0;
    double ms = 0.0;
  };

  /// Outcome of one rebalance pass: the moves executed plus the record
  /// imbalance (max/mean alive records across all shards, idle shards
  /// included) around the pass.
  struct RebalanceReport {
    std::vector<MigrationReport> moves;
    double record_imbalance_before = 0.0;
    double record_imbalance_after = 0.0;
    uint64_t placement_version = 0;
  };

  /// Live-migrates blocking group `group` (a ShardRouter::GroupKey
  /// value; see GroupOf) to `to_shard` without retraining: quiesces only
  /// the source and destination shards at a flush epoch, moves the
  /// group's records, cluster memberships and similarity aggregates via
  /// ClusteringEngine::{Extract,Adopt}GroupState, re-homes queued
  /// operations that raced the move, and publishes a new placement
  /// version — concurrent ingest to other shards keeps flowing. At the
  /// next flush barrier the clustering is byte-identical to a run that
  /// never migrated (blocking-disjoint workloads; the migration
  /// equivalence tests pin this down).
  MigrationReport MigrateGroup(uint64_t group, uint32_t to_shard);

  /// One load-aware rebalance pass: measures per-shard cost (cumulative
  /// round time since the last pass) and per-group sizes, asks the
  /// Rebalancer policy for moves, and executes them. Also runs
  /// automatically every Options::rebalance.every_rounds dynamic
  /// barriers.
  RebalanceReport RebalanceOnce();

  /// The blocking-group key of a record under the configured router —
  /// what MigrateGroup and the placement table key on.
  uint64_t GroupOf(const Record& record) const {
    return router_->GroupKey(record);
  }

  /// Current per-group load (alive records + owning shard), the
  /// group-level half of the Rebalancer's input. Sorted heaviest first,
  /// ties on group hash (deterministic).
  std::vector<Rebalancer::GroupLoad> GroupLoads() const;

  const PlacementTable& placement() const { return placement_; }

  /// One pure AIMD step for the adaptive drain bite (see
  /// AsyncOptions::adaptive_batch): multiplicative decrease when the
  /// observed apply+round latency exceeds the target, additive increase
  /// while the remaining backlog outruns the current bite. Exposed as a
  /// pure function so the policy is unit-testable without timing.
  struct AdaptiveBiteDecision {
    size_t bite = 0;
    bool grew = false;
    bool shrank = false;
  };
  static AdaptiveBiteDecision NextAdaptiveBite(size_t current,
                                               double latency_ms,
                                               size_t backlog,
                                               const AsyncOptions& options);

  /// Cumulative ingestion-pipeline counters (see IngestStats).
  IngestStats ingest_stats() const;

  /// Current partition in global ids, canonical form (members ascending,
  /// clusters sorted): the union of the per-shard clusterings. In async
  /// mode, call after Flush() (or use Snapshot()) for a cut that
  /// reflects the whole stream.
  std::vector<std::vector<ObjectId>> GlobalClusters() const;

  uint32_t num_shards() const { return static_cast<uint32_t>(shards_.size()); }
  size_t num_threads() const { return pool_.size(); }
  bool async() const { return options_.async.enabled; }
  size_t total_objects() const;
  size_t total_clusters() const;
  /// True when every shard that holds objects can serve dynamic rounds.
  bool is_trained() const;

  /// Attaches (or detaches, with nullptr) the replication feed. Must be
  /// called while the service is quiescent — no in-flight producers and
  /// no barrier running — typically right before the base snapshot that
  /// starts a ReplicationSession. Not owned; the observer must outlive
  /// the service or detach first.
  void SetStreamObserver(StreamObserver* observer) { observer_ = observer; }
  StreamObserver* stream_observer() const { return observer_; }

  /// The registry/tracer this service instruments into (null when
  /// metrics are idle). The replication layer resolves its own metric
  /// handles through these, so primary-side and service-side metrics
  /// land in the same books.
  obs::MetricsRegistry* metrics_registry() const {
    return options_.obs.metrics;
  }
  obs::Tracer* tracer() const { return tracer_; }

  // --------------------------------------------------- epoch-pinned reads

  /// True when Options::read.serve enabled the read surface.
  bool serves_reads() const { return read_views_ != nullptr; }

  /// Pins the currently published ReadView (null pin when read serving
  /// is off or nothing is published yet — the service has sealed no
  /// epoch and run no dynamic barrier). Lock-free for readers; hold the
  /// pin for the duration of one query, not longer.
  ReadPin AcquireReadView() const {
    return read_views_ != nullptr ? read_views_->Acquire() : ReadPin();
  }

  /// The publication point itself (epoch introspection, reclamation
  /// diagnostics). Null when read serving is off.
  ReadViewRegistry* read_views() const { return read_views_.get(); }

  /// Builds and publishes a view of the current state, stamped with the
  /// newest sealed epoch. The automatic publication points (epoch seals
  /// with no unapplied tail, dynamic barriers) call the same machinery;
  /// this is for callers that changed state through a side door —
  /// LoadSnapshot, a replica that finished replaying — and want the
  /// read surface to reflect it now.
  void PublishReadView();

  /// The shard owning a (live or tombstoned) global id.
  uint32_t ShardOfObject(ObjectId global_id) const;
  const DynamicCSession& session(uint32_t shard) const;
  const Dataset& dataset(uint32_t shard) const;
  const ShardRouter& router() const { return *router_; }

 private:
  struct Shard {
    ShardEnvironment env;
    Dataset dataset;
    std::unique_ptr<SimilarityGraph> graph;
    std::unique_ptr<DynamicCSession> session;

    /// Held for the duration of every apply + round on this shard (by
    /// the background worker in async mode, by fork-join lanes at
    /// barriers); snapshot readers take it to observe the shard at a
    /// round boundary. Also guards global_of_local, dirty and
    /// pending_changed.
    mutable std::mutex round_mutex;
    /// Local id -> global id (local ids are dense, so a vector).
    std::vector<ObjectId> global_of_local;
    /// Set when an operation lands on the shard; cleared by rounds.
    bool dirty = false;
    /// Local ids applied but not yet covered by any round (accumulates
    /// only while the shard is untrained; barrier rounds consume it).
    std::vector<ObjectId> pending_changed;
    /// Bumped by every state mutation under round_mutex (batch applies,
    /// rounds, migration surgery). The read-view publisher compares it
    /// against the previous view's slice version to rebuild only the
    /// shards that actually changed.
    uint64_t state_version = 0;

    /// Guards the ingest queue and the counters below.
    mutable std::mutex queue_mutex;
    std::condition_variable queue_not_full;
    std::condition_variable queue_drained;
    OperationLog log;
    /// One sealed epoch this shard has not fully applied yet: every log
    /// operation with sequence < boundary belongs to `epoch` (or
    /// earlier). Boundaries are non-decreasing front to back; a
    /// migration that replays raced operations onto this shard raises
    /// pending boundaries so the epoch waits for the replayed tail too.
    struct EpochMark {
      uint64_t epoch = 0;
      uint64_t boundary = 0;
    };
    std::deque<EpochMark> epoch_marks;
    /// Trace context of the most recent traced enqueue (guarded by
    /// queue_mutex). The drain worker takes-and-clears it with the
    /// batch, so the async drain.apply span joins the trace of the
    /// ingest that fed it — stitching client → handler → drain across
    /// the thread handoff. Best-effort under coalescing: concurrent
    /// traced producers overwrite, the batch adopts the newest.
    obs::TraceContext queue_trace;
    /// Highest closed epoch fully applied on this shard (monotone).
    uint64_t applied_epoch = 0;
    /// Log-sequence watermark: every appended operation with sequence <
    /// reflected_seq has been applied (or folded/annihilated into one
    /// that was). Only recomputed at batch boundaries — when no drained
    /// batch is in flight — so it never overstates.
    uint64_t reflected_seq = 0;
    std::condition_variable epoch_applied;
    /// True while a drain task is queued or running for this shard.
    bool worker_busy = false;
    /// Set by a migration to park the drain worker at a batch boundary:
    /// a worker that sees it returns without taking another batch (and
    /// without resubmitting itself), so the migration can operate on a
    /// shard with no drained-but-unapplied batch in flight. Producers
    /// cannot schedule a worker meanwhile — the migration holds
    /// ingest_mutex_.
    bool paused = false;
    /// Current AIMD drain bite (adaptive_batch mode; 0 until the first
    /// drain initializes it to min_batch).
    size_t adaptive_batch = 0;
    uint64_t batch_grows = 0;
    uint64_t batch_shrinks = 0;
    /// Round cost accumulated since the last rebalance pass (worker and
    /// barrier rounds alike) — the per-shard half of the Rebalancer's
    /// input.
    double cost_ms = 0.0;
    uint64_t accepted_ops = 0;
    /// Operations applied into this shard's engine (surviving operations
    /// only; the per-group breakdown lives in group_ops_).
    uint64_t applied_ops = 0;
    uint64_t applied_batches = 0;
    uint64_t worker_rounds = 0;
    uint64_t producer_waits = 0;
    size_t queue_high_water = 0;
    double worker_apply_ms = 0.0;
    double worker_round_ms = 0.0;
    /// Cumulative recluster counters from every dynamic round this
    /// shard ran — background worker rounds and barrier rounds alike —
    /// so Snapshot().report.combined is comparable with summing the
    /// synchronous path's per-round reports.
    ReclusterReport round_detail;
  };

  struct ObjectLocation {
    uint32_t shard = 0;
    ObjectId local = kInvalidObject;
    /// Blocking group the object was admitted under (router GroupKey);
    /// migrations move whole groups, so this never changes.
    uint64_t group = 0;
  };

  IngestResult IngestInternal(const OperationBatch& operations,
                              BackpressurePolicy policy);

  /// Fills `report`'s imbalance ratios and placement fields from its
  /// per-shard stats and the service counters.
  void FinalizeReport(ServiceReport* report) const;

  /// The serving half every barrier shares (DynamicRound, Flush and
  /// Flush(epoch) differ only in how they quiesce and derive hints):
  /// rounds the dirty shards, finalizes the report, flips the service
  /// into serving mode, and drives the automatic rebalance cadence.
  ServiceReport ServeBarrier(std::vector<std::vector<ObjectId>> hints,
                             uint64_t flush_epoch);

  /// CloseEpoch with ingest_mutex_ already held.
  uint64_t CloseEpochLocked();

  /// Recomputes `shard`'s reflected_seq from its log and pops every
  /// epoch mark the watermark now covers (notifying epoch waiters).
  /// Caller holds the shard's queue_mutex, at a batch boundary (no
  /// drained-but-unapplied batch in flight for the shard).
  static void AdvanceEpochsLocked(Shard* shard);

  /// Parks / resumes shard `s`'s drain worker around a migration (async
  /// mode; see Shard::paused).
  void ParkWorker(size_t shard_index);
  void ResumeWorker(size_t shard_index);

  /// Translates a drained (global-handle) batch to local ids, applies it
  /// through the shard's session, and registers the global<->local
  /// mapping for adds. Caller holds the shard's round_mutex. Returns the
  /// local changed ids.
  std::vector<ObjectId> ApplyBatchToShard(size_t shard_index,
                                          const OperationBatch& batch);

  /// Background drain loop for one shard: repeatedly takes a coalesced
  /// batch, applies it, and (once the shard is trained) runs a dynamic
  /// round, until the queue is empty.
  void WorkerDrain(size_t shard_index);

  /// Splits `changed` (global ids) into per-shard local-id lists,
  /// skipping ids that never materialized (annihilated adds).
  std::vector<std::vector<ObjectId>> LocalizeChanged(
      const std::vector<ObjectId>& changed) const;

  /// Moves every shard's pending_changed out (the async barrier's
  /// precise per-shard changed hints).
  std::vector<std::vector<ObjectId>> TakePendingChanged();

  /// Translates per-shard local-id hint lists back to global ids
  /// (concatenated; per-shard relative order preserved, which is all a
  /// later LocalizeChanged needs). Used to report async barriers' hints
  /// to the stream observer in the global vocabulary OnAdmitted uses.
  std::vector<ObjectId> GlobalizeHints(
      const std::vector<std::vector<ObjectId>>& local_hints) const;

  /// Fills `ingest` with the cumulative pipeline counters.
  void FillIngestStats(IngestStats* ingest) const;

  /// Registry handles, resolved once at construction (null metrics_
  /// when Options::obs.metrics is null). Histograms record live on the
  /// hot paths; the IngestStats-mirror gauges are published by
  /// FillIngestStats — the shard counters stay the single source of
  /// truth and the registry is the uniform export surface over them
  /// (obs_test pins the two views equal).
  struct ServiceMetrics {
    obs::Histogram* admit_ms = nullptr;
    obs::Histogram* queue_wait_ms = nullptr;
    obs::Histogram* drain_batch_ops = nullptr;
    obs::Histogram* drain_apply_ms = nullptr;
    obs::Histogram* worker_round_ms = nullptr;
    obs::Histogram* barrier_ms = nullptr;
    obs::Histogram* epoch_seal_ms = nullptr;
    obs::Histogram* migration_ms = nullptr;
    obs::Histogram* read_publish_ms = nullptr;
    obs::Histogram* snapshot_save_ms = nullptr;
    obs::Histogram* snapshot_load_ms = nullptr;
    obs::Counter* epochs_sealed = nullptr;
    obs::Counter* migration_ops_rehomed = nullptr;
    obs::Counter* rebalance_passes = nullptr;
    obs::Counter* snapshot_save_bytes = nullptr;
    obs::Counter* snapshot_load_bytes = nullptr;
    /// IngestStats mirrors (gauges; see FillIngestStats).
    obs::Gauge* accepted_ops = nullptr;
    obs::Gauge* rejected_batches = nullptr;
    obs::Gauge* rejected_ops = nullptr;
    obs::Gauge* coalesced_ops = nullptr;
    obs::Gauge* pending_ops = nullptr;
    obs::Gauge* applied_ops = nullptr;
    obs::Gauge* open_epoch = nullptr;
    obs::Gauge* applied_epoch = nullptr;
    obs::Gauge* applied_batches = nullptr;
    obs::Gauge* worker_rounds = nullptr;
    obs::Gauge* producer_waits = nullptr;
    obs::Gauge* queue_high_water = nullptr;
    /// Placement health (published by FinalizeReport / RebalanceOnce).
    obs::Gauge* record_imbalance = nullptr;
    obs::Gauge* cost_imbalance = nullptr;
    obs::Gauge* placement_version = nullptr;
    obs::Gauge* groups_migrated = nullptr;
    /// Per-shard queue depth, labelled "queue.depth{shard=i}".
    std::vector<obs::Gauge*> queue_depth;
  };

  /// Appends one shard's clusters to `out`, translated to global ids
  /// with members ascending. Caller holds the shard's round_mutex; the
  /// cluster list still needs a final sort for canonical form.
  static void AppendShardClusters(const Shard& shard,
                                  std::vector<std::vector<ObjectId>>* out);

  /// One shard's half of a ReadView, cut at `version` under the shard's
  /// round_mutex (held by the caller).
  std::shared_ptr<const ReadViewSlice> BuildShardSlice(size_t shard_index,
                                                       uint64_t version) const;

  /// Builds and publishes a ReadView stamped `epoch`, reusing every
  /// slice whose shard version did not move since the previous view.
  /// Takes each shard's round_mutex in turn (never all at once); caller
  /// must hold none of them. Publishers serialize on
  /// read_publish_mutex_. No-op when read serving is off, and when
  /// nothing changed since a view at the same epoch.
  void PublishReadViewAt(uint64_t epoch);

  Options options_;
  std::unique_ptr<ShardRouter> router_;
  std::vector<std::unique_ptr<Shard>> shards_;

  /// Epoch-pinned read surface (null = read serving off). Declared
  /// after shards_ so views die before the shard environments their
  /// borrowed SimilarityMeasure lives in.
  std::unique_ptr<ReadViewRegistry> read_views_;
  /// Serializes view publication (the seal path and the barrier path
  /// can both publish) and guards read_sequence_.
  std::mutex read_publish_mutex_;
  uint64_t read_sequence_ = 0;

  /// Null when metrics are idle — every instrumentation site guards on
  /// this one pointer.
  std::unique_ptr<ServiceMetrics> metrics_;
  obs::Tracer* tracer_ = nullptr;

  /// Replication feed (null = not replicating). Written only while
  /// quiescent (SetStreamObserver's contract); read on the ingest, seal,
  /// migration and barrier paths.
  StreamObserver* observer_ = nullptr;

  /// Versioned blocking-group -> shard overrides. Every batch routes
  /// against one pinned version (taken under ingest_mutex_, which every
  /// migration also holds, so a batch can never straddle two
  /// placements); groups without an override fall back to the router.
  PlacementTable placement_;

  /// Serializes producers: global ids are assigned densely in admission
  /// order, and a kReject capacity check is atomic with its enqueue.
  /// Never taken by workers (a producer may block on queue space while
  /// holding it; workers must stay free to drain).
  std::mutex ingest_mutex_;
  /// Guards locations_ (brief, leaf-level).
  mutable std::mutex locations_mutex_;
  /// Global id -> owning shard + local id; indexed by global id. The
  /// shard is fixed at admission; the local id is filled in when the
  /// add is applied (kInvalidObject until then, or forever for adds
  /// annihilated in the queue).
  std::vector<ObjectLocation> locations_;
  /// Group hash -> global ids ever admitted under it (append-only; dead
  /// and annihilated members are filtered at use). Guarded by
  /// locations_mutex_.
  std::unordered_map<uint64_t, std::vector<ObjectId>> group_members_;
  /// Group hash -> alive applied records, maintained at application
  /// time (adds increment, removes decrement). Guarded by
  /// locations_mutex_; the O(groups) input of GroupLoads().
  std::unordered_map<uint64_t, size_t> group_alive_;
  /// Group hash -> operations applied under the group (cumulative; every
  /// surviving add/update/remove counts). Guarded by locations_mutex_.
  /// The per-group activity signal the Rebalancer's kOps metric ranks
  /// on, and part of the persisted IngestStats.
  std::unordered_map<uint64_t, uint64_t> group_ops_;
  /// Group hash -> the shard currently owning the group (set at
  /// admission, updated by migration). The authoritative answer —
  /// individual members' locations can lag it for tombstones, which
  /// stay where they died. Guarded by locations_mutex_.
  std::unordered_map<uint64_t, uint32_t> group_shard_;
  std::atomic<uint64_t> rejected_batches_{0};
  std::atomic<uint64_t> rejected_ops_{0};
  /// Migrations that actually moved data, and the dynamic-barrier
  /// cadence counter for automatic rebalancing.
  std::atomic<uint64_t> migrations_{0};
  std::atomic<uint32_t> rounds_since_rebalance_{0};
  /// The epoch currently accepting admissions; CloseEpoch increments it.
  std::atomic<uint64_t> open_epoch_{1};
  /// Seqlock over migration surgery (odd = in progress): a migration
  /// moves epoch obligations between shard logs, so WaitEpoch re-scans
  /// whenever its scan overlapped one — per-shard watermarks alone
  /// cannot see an obligation that hopped shards mid-scan.
  std::atomic<uint64_t> migration_seq_{0};
  /// Set by explicit DynamicRound/Flush barriers (to is_trained()) and
  /// cleared by ObserveBatchRound. Background workers only run rounds
  /// while set — in barrier-driven (training/observe) mode async
  /// ingestion defers application only, so every observe barrier sees
  /// exactly the synchronous path's engine state and derives identical
  /// models, no matter how many training rounds the caller runs.
  std::atomic<bool> serving_{false};

  /// Last member: destroyed first, so the pool joins its workers (and
  /// finishes any queued drain) while the shards are still alive.
  ThreadPool pool_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_SHARDED_SERVICE_H_
