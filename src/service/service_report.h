#ifndef DYNAMICC_SERVICE_SERVICE_REPORT_H_
#define DYNAMICC_SERVICE_SERVICE_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dynamicc.h"
#include "core/session.h"

namespace dynamicc {

/// One shard's contribution to a service-level round. `round_ms` is the
/// shard's own wall time inside the round (its position on the critical
/// path); the nested session report breaks it down further.
struct ShardTrainStats {
  uint32_t shard = 0;
  size_t objects = 0;
  size_t clusters = 0;
  double round_ms = 0.0;
  /// False when the shard was empty and skipped the training round.
  bool participated = false;
  DynamicCSession::TrainReport report;
};

struct ShardDynamicStats {
  uint32_t shard = 0;
  size_t objects = 0;
  size_t clusters = 0;
  double round_ms = 0.0;
  /// False when the shard sat the round out (empty, or not yet trained
  /// because its slice produced no evolution steps).
  bool participated = false;
  DynamicCSession::DynamicReport report;
};

/// Accumulates `addend`'s counters into `total` (shard reports sum into
/// the service-level view).
inline void AccumulateRecluster(ReclusterReport* total,
                                const ReclusterReport& addend) {
  total->iterations += addend.iterations;
  total->merges_applied += addend.merges_applied;
  total->splits_applied += addend.splits_applied;
  total->merge_predicted += addend.merge_predicted;
  total->split_predicted += addend.split_predicted;
  total->rejected += addend.rejected;
  total->probability_evaluations += addend.probability_evaluations;
}

/// Service-level view of one round executed across all shards. Wall time
/// is what a caller waits (shards run concurrently); total shard time is
/// what the machine pays; max shard time exposes the straggler that
/// bounds scaling.
struct ServiceReport {
  double wall_ms = 0.0;
  double total_shard_ms = 0.0;
  double max_shard_ms = 0.0;
  size_t total_objects = 0;
  size_t total_clusters = 0;

  /// Summed DynamicC counters across shards (dynamic rounds only).
  ReclusterReport combined;
  /// Summed evolution-step count across shards (training rounds only).
  size_t evolution_steps = 0;

  /// Exactly one of these is non-empty, matching the round kind.
  std::vector<ShardTrainStats> train_shards;
  std::vector<ShardDynamicStats> dynamic_shards;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_SERVICE_REPORT_H_
