#ifndef DYNAMICC_SERVICE_SERVICE_REPORT_H_
#define DYNAMICC_SERVICE_SERVICE_REPORT_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "core/dynamicc.h"
#include "core/session.h"

namespace dynamicc {

/// One shard's contribution to a service-level round. `round_ms` is the
/// shard's own wall time inside the round (its position on the critical
/// path); the nested session report breaks it down further.
struct ShardTrainStats {
  uint32_t shard = 0;
  size_t objects = 0;
  size_t clusters = 0;
  double round_ms = 0.0;
  /// False when the shard was empty and skipped the training round.
  bool participated = false;
  DynamicCSession::TrainReport report;
};

struct ShardDynamicStats {
  uint32_t shard = 0;
  size_t objects = 0;
  size_t clusters = 0;
  double round_ms = 0.0;
  /// False when the shard sat the round out (empty, or not yet trained
  /// because its slice produced no evolution steps).
  bool participated = false;
  DynamicCSession::DynamicReport report;
};

/// Accumulates `addend`'s counters into `total` (shard reports sum into
/// the service-level view).
inline void AccumulateRecluster(ReclusterReport* total,
                                const ReclusterReport& addend) {
  total->iterations += addend.iterations;
  total->merges_applied += addend.merges_applied;
  total->splits_applied += addend.splits_applied;
  total->merge_predicted += addend.merge_predicted;
  total->split_predicted += addend.split_predicted;
  total->rejected += addend.rejected;
  total->probability_evaluations += addend.probability_evaluations;
}

/// Max/mean ratio over `values`: 1.0 when balanced, N when everything
/// sits on one entry of N, 0.0 when nothing is loaded. The mean counts
/// zero entries — an idle shard *is* imbalance — so callers pass one
/// entry per shard they consider eligible (all shards for record skew,
/// participants only for round cost).
inline double MaxMeanRatio(const std::vector<double>& values) {
  double max = 0.0, sum = 0.0;
  for (double v : values) {
    if (v > max) max = v;
    if (v > 0.0) sum += v;
  }
  if (values.empty() || sum <= 0.0) return 0.0;
  return max * static_cast<double>(values.size()) / sum;
}

/// Cumulative counters of the async ingestion pipeline (bounded
/// per-shard queues + background round workers). All counters are
/// totals since service construction; in synchronous mode only
/// `accepted_ops` advances.
struct IngestStats {
  /// Operations admitted to the service (enqueued or applied inline).
  uint64_t accepted_ops = 0;
  /// Whole batches turned away by the kReject backpressure policy, and
  /// the operations they carried. A rejected batch consumes no ids.
  uint64_t rejected_batches = 0;
  uint64_t rejected_ops = 0;
  /// Operations absorbed by per-key coalescing in the queues (add+update
  /// folds, add+remove annihilations) — work never paid for.
  uint64_t coalesced_ops = 0;
  /// Queued operations not yet reflected in any shard engine.
  uint64_t pending_ops = 0;
  /// Operations applied into shard engines (surviving operations only —
  /// coalesced-away work never counts). The per-group breakdown behind
  /// this total feeds the Rebalancer's kOps load metric.
  uint64_t applied_ops = 0;
  /// Flush-epoch watermarks: the epoch currently open for admissions,
  /// and the highest closed epoch every shard has fully applied (0 until
  /// the first CloseEpoch).
  uint64_t open_epoch = 0;
  uint64_t applied_epoch = 0;
  /// Drained batches applied by background workers, and the dynamic
  /// rounds those workers ran.
  uint64_t applied_batches = 0;
  uint64_t worker_rounds = 0;
  /// Producer wait episodes under the kBlock policy (a full queue made
  /// an Ingest call sleep at least once).
  uint64_t producer_waits = 0;
  /// Largest pending-operation depth any single shard queue reached.
  size_t queue_high_water = 0;
  /// Summed background-worker time: applying drained batches vs running
  /// dynamic rounds (the overlap the pipeline buys).
  double worker_apply_ms = 0.0;
  double worker_round_ms = 0.0;
  /// Adaptive drain sizing (AsyncOptions::adaptive_batch, AIMD): bite
  /// growth/shrink episodes across all shards, and the smallest/largest
  /// per-shard bite currently in effect (0/0 while disabled or before
  /// any worker adapted). Divergent min/max is the feature working:
  /// bursty shards grew their bite while latency-bound ones shrank.
  uint64_t batch_grows = 0;
  uint64_t batch_shrinks = 0;
  size_t adaptive_batch_min = 0;
  size_t adaptive_batch_max = 0;
};

/// Service-level view of one round executed across all shards. Wall time
/// is what a caller waits (shards run concurrently); total shard time is
/// what the machine pays; max shard time exposes the straggler that
/// bounds scaling.
struct ServiceReport {
  double wall_ms = 0.0;
  double total_shard_ms = 0.0;
  double max_shard_ms = 0.0;
  size_t total_objects = 0;
  size_t total_clusters = 0;

  /// Imbalance, as max/mean ratios (1.0 = perfectly balanced, 0.0 = not
  /// computable). `cost_imbalance` compares round wall time across the
  /// shards that participated in this round — the straggler factor that
  /// bounds fork-join scaling and that the Rebalancer's hysteresis
  /// threshold is compared against. `record_imbalance` compares alive
  /// record counts across ALL shards (an idle shard counts toward the
  /// mean — it *is* the skew: everything on 1 shard of N reads N.0) —
  /// meaningful even in rounds nobody served, and in snapshots.
  double cost_imbalance = 0.0;
  double record_imbalance = 0.0;

  /// Placement state at the time the report was built: the version of
  /// the routing table (one bump per placement decision) and the
  /// cumulative number of group migrations that actually moved data.
  uint64_t placement_version = 0;
  uint64_t groups_migrated = 0;

  /// For reports produced by an epoch-tagged Flush(epoch): the epoch the
  /// barrier waited for (0 for full barriers and plain rounds).
  uint64_t flush_epoch = 0;

  /// Summed DynamicC counters across shards (dynamic rounds only).
  ReclusterReport combined;
  /// Summed evolution-step count across shards (training rounds only).
  size_t evolution_steps = 0;

  /// Cumulative ingestion-pipeline counters at the time the report was
  /// built (filled by barrier calls and snapshots).
  IngestStats ingest;

  /// Exactly one of these is non-empty, matching the round kind.
  std::vector<ShardTrainStats> train_shards;
  std::vector<ShardDynamicStats> dynamic_shards;
};

/// A consistent cut of the service: every shard is observed at a round
/// boundary (no shard mid-apply or mid-recluster), so the partition is
/// one the equivalent single-engine run could have produced. `sequence`
/// says how far into the operation stream the cut is — after a Flush()
/// with no concurrent ingestion it equals the total accepted operation
/// count, i.e. the cut reflects everything.
struct ServiceSnapshot {
  /// Operations whose effect is reflected in `clusters` (accepted minus
  /// still-queued).
  uint64_t sequence = 0;
  size_t total_objects = 0;
  size_t total_clusters = 0;
  /// Current partition in global ids, canonical form.
  std::vector<std::vector<ObjectId>> clusters;
  /// Per-shard sizes plus cumulative ingest + recluster counters at the
  /// cut (dynamic_shards carries one entry per shard; participated is
  /// always false — a snapshot runs no rounds).
  ServiceReport report;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_SERVICE_REPORT_H_
