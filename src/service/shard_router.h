#ifndef DYNAMICC_SERVICE_SHARD_ROUTER_H_
#define DYNAMICC_SERVICE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "data/record.h"

namespace dynamicc {

/// Decides which shard of a ShardedDynamicCService owns a new record.
/// Routing happens once, at Add time; removes and updates follow the
/// object to the shard that owns it, so routers only ever see adds.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  virtual const char* Name() const = 0;

  /// Shard index in [0, num_shards) for a record about to be added.
  /// `num_shards` is always >= 1. Must be deterministic in the record's
  /// content for content-addressed routers (the default); stateful
  /// routers (round-robin) may ignore the record entirely.
  ///
  /// This is the *fallback* placement: the service consults its
  /// versioned PlacementTable first (service/placement.h) and only
  /// routes here for blocking groups that were never migrated.
  virtual uint32_t Route(const Record& record, uint32_t num_shards) const = 0;

  /// Stable identity of the record's blocking group — the key the
  /// placement layer pins overrides on and migrations move by. The
  /// default is the content hash of StableShardKey, which every
  /// content-addressed deployment shares; routers with a custom notion
  /// of grouping override it consistently with Route.
  virtual uint64_t GroupKey(const Record& record) const;

  /// True when Route is a pure function of the record's content, so a
  /// blocking group's records always co-locate. The placement layer
  /// (migration, rebalancing) requires this: moving "a group" is only
  /// meaningful when the group lives on one shard. Stateful scatter
  /// routers must return false.
  virtual bool ContentAddressed() const { return true; }
};

/// Content-addressed router: FNV-1a hash of a stable key extracted from
/// the record, modulo the shard count. With the default extractor
/// (StableShardKey in data/blocking.h) records that share their blocking
/// key always land on the same shard, so similarity edges never cross
/// shards on blocking-disjoint workloads — the property that makes
/// sharded re-clustering equivalent to the single-engine run.
class HashShardRouter final : public ShardRouter {
 public:
  using KeyExtractor = std::function<std::string(const Record&)>;

  /// Uses StableShardKey as the extractor.
  HashShardRouter();
  explicit HashShardRouter(KeyExtractor extractor);

  const char* Name() const override { return "hash-blocking-key"; }
  uint32_t Route(const Record& record, uint32_t num_shards) const override;

  /// With a custom extractor the group identity follows the extractor,
  /// so placement overrides and fallback routing always agree on what
  /// a "group" is.
  uint64_t GroupKey(const Record& record) const override;

  /// The stable 64-bit FNV-1a hash routing is based on (exposed so tests
  /// and rebalancing tooling can reason about placements; delegates to
  /// BlockingKeyHash in data/blocking.h).
  static uint64_t HashKey(const std::string& key);

 private:
  KeyExtractor extractor_;
};

/// Load-balancing router that ignores content and deals adds out in
/// rotation. Only correct for workloads where cross-record similarity
/// does not matter (latency soak tests, independent-singleton streams);
/// with real similarity structure it splits clusters across shards.
class RoundRobinShardRouter final : public ShardRouter {
 public:
  const char* Name() const override { return "round-robin"; }
  uint32_t Route(const Record& record, uint32_t num_shards) const override;
  /// Scatters a group's records by design, so group migration and
  /// rebalancing are off the table (the service checks).
  bool ContentAddressed() const override { return false; }

 private:
  mutable std::atomic<uint32_t> next_{0};
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_SHARD_ROUTER_H_
