#ifndef DYNAMICC_SERVICE_SHARD_ROUTER_H_
#define DYNAMICC_SERVICE_SHARD_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>

#include "data/record.h"

namespace dynamicc {

/// Decides which shard of a ShardedDynamicCService owns a new record.
/// Routing happens once, at Add time; removes and updates follow the
/// object to the shard that owns it, so routers only ever see adds.
class ShardRouter {
 public:
  virtual ~ShardRouter() = default;

  virtual const char* Name() const = 0;

  /// Shard index in [0, num_shards) for a record about to be added.
  /// `num_shards` is always >= 1. Must be deterministic in the record's
  /// content for content-addressed routers (the default); stateful
  /// routers (round-robin) may ignore the record entirely.
  virtual uint32_t Route(const Record& record, uint32_t num_shards) const = 0;
};

/// Content-addressed router: FNV-1a hash of a stable key extracted from
/// the record, modulo the shard count. With the default extractor
/// (StableShardKey in data/blocking.h) records that share their blocking
/// key always land on the same shard, so similarity edges never cross
/// shards on blocking-disjoint workloads — the property that makes
/// sharded re-clustering equivalent to the single-engine run.
class HashShardRouter final : public ShardRouter {
 public:
  using KeyExtractor = std::function<std::string(const Record&)>;

  /// Uses StableShardKey as the extractor.
  HashShardRouter();
  explicit HashShardRouter(KeyExtractor extractor);

  const char* Name() const override { return "hash-blocking-key"; }
  uint32_t Route(const Record& record, uint32_t num_shards) const override;

  /// The stable 64-bit FNV-1a hash routing is based on (exposed so tests
  /// and rebalancing tooling can reason about placements).
  static uint64_t HashKey(const std::string& key);

 private:
  KeyExtractor extractor_;
};

/// Load-balancing router that ignores content and deals adds out in
/// rotation. Only correct for workloads where cross-record similarity
/// does not matter (latency soak tests, independent-singleton streams);
/// with real similarity structure it splits clusters across shards.
class RoundRobinShardRouter final : public ShardRouter {
 public:
  const char* Name() const override { return "round-robin"; }
  uint32_t Route(const Record& record, uint32_t num_shards) const override;

 private:
  mutable std::atomic<uint32_t> next_{0};
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_SHARD_ROUTER_H_
