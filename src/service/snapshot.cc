// Durable snapshots of ShardedDynamicCService (SaveSnapshot /
// LoadSnapshot) plus the format helpers declared in snapshot.h. Lives
// apart from sharded_service.cc because it is the only part of the
// service that touches the filesystem, and it pulls in the cluster/ml
// serialization layers the hot path never needs.

#include "service/snapshot.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <iomanip>
#include <map>
#include <sstream>
#include <utility>
#include <vector>

#include "cluster/serialization.h"
#include "data/blocking.h"
#include "ml/serialization.h"
#include "service/sharded_service.h"
#include "util/logging.h"
#include "util/timer.h"
#include "util/wire.h"

namespace dynamicc {

namespace {

constexpr int kDoublePrecision = 17;  // round-trips IEEE doubles exactly
constexpr const char* kManifestName = "MANIFEST";
constexpr const char* kServiceFileName = "service.dat";

std::string ShardFileName(size_t shard) {
  return "shard-" + std::to_string(shard) + ".dat";
}

struct ManifestEntry {
  std::string name;
  uint64_t size = 0;
  uint64_t checksum = 0;
};

struct Manifest {
  SnapshotInfo info;
  std::vector<ManifestEntry> files;
};

std::string RenderManifest(const Manifest& manifest) {
  std::ostringstream os;
  os << "dynamicc-snapshot " << manifest.info.format_version << "\n";
  os << "epoch " << manifest.info.epoch << "\n";
  os << "shards " << manifest.info.num_shards << "\n";
  os << "placement_version " << manifest.info.placement_version << "\n";
  os << "files " << manifest.files.size() << "\n";
  for (const ManifestEntry& entry : manifest.files) {
    os << entry.name << " " << entry.size << " " << std::hex
       << entry.checksum << std::dec << "\n";
  }
  return os.str();
}

Status ParseManifest(const std::string& bytes, Manifest* manifest) {
  std::istringstream is(bytes);
  std::string magic, tag;
  if (!(is >> magic >> manifest->info.format_version) ||
      magic != "dynamicc-snapshot") {
    return Status::InvalidArgument("not a dynamicc snapshot manifest");
  }
  if (manifest->info.format_version != kSnapshotFormatVersion) {
    return Status::InvalidArgument(
        "unsupported snapshot format version " +
        std::to_string(manifest->info.format_version) + " (expected " +
        std::to_string(kSnapshotFormatVersion) + ")");
  }
  size_t file_count = 0;
  if (!(is >> tag >> manifest->info.epoch) || tag != "epoch" ||
      !(is >> tag >> manifest->info.num_shards) || tag != "shards" ||
      !(is >> tag >> manifest->info.placement_version) ||
      tag != "placement_version" || !(is >> tag >> file_count) ||
      tag != "files") {
    return Status::InvalidArgument("malformed snapshot manifest header");
  }
  manifest->files.resize(file_count);
  for (ManifestEntry& entry : manifest->files) {
    if (!(is >> entry.name >> entry.size >> std::hex >> entry.checksum >>
          std::dec)) {
      return Status::InvalidArgument("truncated snapshot manifest");
    }
  }
  return Status::Ok();
}

/// Reads one payload file and verifies its size + checksum against the
/// manifest before any of it is parsed.
Status ReadVerified(const std::string& dir, const Manifest& manifest,
                    const std::string& name, std::string* bytes) {
  const ManifestEntry* entry = nullptr;
  for (const ManifestEntry& candidate : manifest.files) {
    if (candidate.name == name) {
      entry = &candidate;
      break;
    }
  }
  if (entry == nullptr) {
    return Status::InvalidArgument("snapshot is missing " + name +
                                   " in its manifest");
  }
  Status status = ReadFileBytes(JoinPath(dir, name), bytes);
  if (!status.ok()) return status;
  if (bytes->size() != entry->size) {
    return Status::InvalidArgument(
        name + " is truncated or padded: " + std::to_string(bytes->size()) +
        " bytes, manifest says " + std::to_string(entry->size));
  }
  if (SnapshotChecksum(*bytes) != entry->checksum) {
    return Status::InvalidArgument(name + " failed its checksum: snapshot "
                                          "is corrupted");
  }
  return Status::Ok();
}

void WriteRecluster(std::ostream& os, const ReclusterReport& detail) {
  os << detail.iterations << " " << detail.merges_applied << " "
     << detail.splits_applied << " " << detail.merge_predicted << " "
     << detail.split_predicted << " " << detail.rejected << " "
     << detail.probability_evaluations;
}

bool ReadRecluster(std::istream& is, ReclusterReport* detail) {
  return static_cast<bool>(is >> detail->iterations >>
                           detail->merges_applied >> detail->splits_applied >>
                           detail->merge_predicted >> detail->split_predicted >>
                           detail->rejected >> detail->probability_evaluations);
}

}  // namespace

uint64_t SnapshotChecksum(const std::string& bytes) {
  // The repository's one FNV-1a 64 implementation (data/blocking.cc);
  // snapshot checksums and blocking-group identities stay the same
  // hash family by construction.
  return BlockingKeyHash(bytes);
}

Status ReadSnapshotInfo(const std::string& dir, SnapshotInfo* info) {
  std::string bytes;
  Status status = ReadFileBytes(JoinPath(dir, kManifestName), &bytes);
  if (!status.ok()) return status;
  Manifest manifest;
  status = ParseManifest(bytes, &manifest);
  if (!status.ok()) return status;
  *info = manifest.info;
  return Status::Ok();
}

Status ShardedDynamicCService::SaveSnapshot(const std::string& dir) {
  // The span/timer cover the whole save — quiesce included, since the
  // stall the service experiences is the number an operator wants.
  obs::ScopedSpan save_span(tracer_, obs::kSpanSnapshotSave,
                            obs::kServiceShard);
  ScopedTimer save_timer;
  save_timer.Record(metrics_ ? metrics_->snapshot_save_ms : nullptr);
  // Crash atomicity: every file is written into a sibling scratch
  // directory ("<dir>.saving") and the scratch is renamed into place
  // only after the manifest — the integrity root, written last — is on
  // disk. A kill at any point leaves either the previous complete
  // snapshot at `dir` (plus a stale scratch the next save sweeps away)
  // or the new complete one; a reader can never observe a half-written
  // `dir`. The one non-atomic window (previous snapshot removed, rename
  // pending) still cannot surface a half-trusted state: `dir` is simply
  // absent and the finished replacement sits in the scratch.
  const std::string scratch = dir + ".saving";
  std::error_code ec;
  std::filesystem::remove_all(scratch, ec);
  if (ec) {
    // A stale scratch that cannot be swept must fail the save: writing
    // into it would publish its leftover files as part of the snapshot.
    return Status::IoError("cannot sweep stale snapshot scratch " + scratch +
                           ": " + ec.message());
  }
  std::filesystem::create_directories(scratch, ec);
  if (ec) {
    return Status::IoError("cannot create snapshot scratch " + scratch +
                           ": " + ec.message());
  }

  // Quiesce at an epoch boundary: producers are excluded (so nothing is
  // admitted past the seal), the current epoch closes, and we wait for
  // every shard to drain its queue — with no admissions racing, "epoch
  // applied everywhere" and "queues empty" coincide, which is the
  // consistent cut the files capture.
  std::lock_guard<std::mutex> ingest_lock(ingest_mutex_);
  const uint64_t epoch = CloseEpochLocked();
  save_span.set_epoch(epoch);
  // Safe while holding ingest_mutex_: Drain only touches the queue
  // mutexes, and the workers it waits on never take ingest_mutex_.
  Drain();

  // Every worker is idle between rounds now; the round mutexes pin that.
  std::vector<std::unique_lock<std::mutex>> round_locks;
  round_locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    round_locks.emplace_back(shard->round_mutex);
  }

  Manifest manifest;
  manifest.info.format_version = kSnapshotFormatVersion;
  manifest.info.epoch = epoch;
  manifest.info.num_shards = num_shards();
  manifest.info.placement_version = placement_.version();

  uint64_t total_bytes = 0;
  auto emit = [&](const std::string& name,
                  const std::string& bytes) -> Status {
    ManifestEntry entry;
    entry.name = name;
    entry.size = bytes.size();
    entry.checksum = SnapshotChecksum(bytes);
    manifest.files.push_back(entry);
    total_bytes += bytes.size();
    return WriteFileBytes(JoinPath(scratch, name), bytes);
  };

  // ------------------------------------------------------- service.dat
  {
    std::ostringstream os;
    os << std::setprecision(kDoublePrecision);
    os << "service 1\n";
    os << "open_epoch " << open_epoch_.load() << "\n";
    os << "serving " << (serving_.load() ? 1 : 0) << "\n";
    os << "counters " << rejected_batches_.load() << " "
       << rejected_ops_.load() << " " << migrations_.load() << " "
       << rounds_since_rebalance_.load() << "\n";

    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    {
      PlacementTable::View view = placement_.Current();
      // Maps are dumped in sorted key order so identical states always
      // produce identical bytes (and checksums).
      std::map<uint64_t, uint32_t> sorted(view->overrides.begin(),
                                          view->overrides.end());
      os << "placement " << view->version << " " << sorted.size() << "\n";
      for (const auto& [group, shard] : sorted) {
        os << group << " " << shard << "\n";
      }
    }
    os << "locations " << locations_.size() << "\n";
    for (const ObjectLocation& loc : locations_) {
      os << loc.shard << " " << loc.local << " " << loc.group << "\n";
    }
    {
      std::map<uint64_t, uint32_t> sorted(group_shard_.begin(),
                                          group_shard_.end());
      os << "group_shards " << sorted.size() << "\n";
      for (const auto& [group, shard] : sorted) {
        os << group << " " << shard << "\n";
      }
    }
    {
      std::map<uint64_t, uint64_t> sorted(group_ops_.begin(),
                                          group_ops_.end());
      os << "group_ops " << sorted.size() << "\n";
      for (const auto& [group, ops] : sorted) {
        os << group << " " << ops << "\n";
      }
    }
    Status status = emit(kServiceFileName, os.str());
    if (!status.ok()) return status;
  }

  // ----------------------------------------------------- shard-<i>.dat
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::ostringstream os;
    os << std::setprecision(kDoublePrecision);
    os << "shard " << s << "\n";

    // Dataset, tombstones included: restored id assignment must continue
    // from the same total count, and tombstoned records stay readable.
    os << "dataset " << shard.dataset.total_count() << "\n";
    for (ObjectId id = 0; id < shard.dataset.total_count(); ++id) {
      const Record& record = shard.dataset.Get(id);
      // The shared record dialect (data/record.h), prefixed by the
      // snapshot's alive flag on the same header line.
      os << (shard.dataset.IsAlive(id) ? 1 : 0) << " ";
      WriteRecordWire(os, record);
    }

    Status status =
        SaveClusteringWithIds(shard.session->engine().clustering(), os);
    if (!status.ok()) return status;

    DynamicCSession::PersistentState session = shard.session->ExportState();
    os << "session " << (session.trained ? 1 : 0) << " "
       << session.rounds_since_retrain << " " << session.rounds_since_observe
       << " " << session.pending_feedback << " " << session.merge_theta
       << " " << session.split_theta << "\n";

    const EvolutionTrainer& trainer = shard.session->trainer();
    os << "trainer " << trainer.rounds_observed() << "\n";
    status = SaveSampleSet(trainer.merge_samples(), os);
    if (!status.ok()) return status;
    status = SaveSampleSet(trainer.split_samples(), os);
    if (!status.ok()) return status;

    auto save_model = [&os](const char* tag,
                            const BinaryClassifier& model) -> Status {
      os << tag << " " << (model.is_fitted() ? 1 : 0) << "\n";
      if (!model.is_fitted()) return Status::Ok();
      return SaveClassifier(model, os);
    };
    status = save_model("model_merge", shard.session->merge_model());
    if (!status.ok()) return status;
    status = save_model("model_split", shard.session->split_model());
    if (!status.ok()) return status;

    os << "state " << (shard.dirty ? 1 : 0) << " "
       << shard.pending_changed.size();
    for (ObjectId local : shard.pending_changed) os << " " << local;
    os << "\n";

    {
      std::lock_guard<std::mutex> queue_lock(shard.queue_mutex);
      os << "shard_counters " << shard.accepted_ops << " "
         << shard.applied_ops << " " << shard.applied_batches << " "
         << shard.worker_rounds << " " << shard.producer_waits << " "
         << shard.queue_high_water << " " << shard.batch_grows << " "
         << shard.batch_shrinks << " " << shard.adaptive_batch << " "
         << shard.cost_ms << " " << shard.worker_apply_ms << " "
         << shard.worker_round_ms << "\n";
      os << "round_detail ";
      WriteRecluster(os, shard.round_detail);
      os << "\n";
    }

    status = emit(ShardFileName(s), os.str());
    if (!status.ok()) return status;
  }

  // The manifest goes last: even a torn scratch directory (if a caller
  // ever pointed a load at one) is missing its integrity root and is
  // rejected outright.
  const std::string manifest_bytes = RenderManifest(manifest);
  total_bytes += manifest_bytes.size();
  Status status =
      WriteFileBytes(JoinPath(scratch, kManifestName), manifest_bytes);
  if (!status.ok()) return status;

  // Publish by rename-aside: the previous snapshot moves to
  // "<dir>.old", the scratch renames into place, and only then is the
  // backup dropped. At every instant at least one *complete* snapshot
  // exists on disk — a kill between the two renames leaves `dir`
  // momentarily absent, but both the backup and the replacement are
  // whole (recover by renaming either back); loads only ever trust
  // `dir`, so nothing half-written can be picked up.
  const std::string backup = dir + ".old";
  std::filesystem::remove_all(backup, ec);
  if (ec) {
    return Status::IoError("cannot sweep stale snapshot backup " + backup +
                           ": " + ec.message());
  }
  if (std::filesystem::exists(dir)) {
    std::filesystem::rename(dir, backup, ec);
    if (ec) {
      return Status::IoError("cannot set aside snapshot " + dir + ": " +
                             ec.message());
    }
  }
  std::filesystem::rename(scratch, dir, ec);
  if (ec) {
    return Status::IoError("cannot publish snapshot " + dir +
                           " (previous state preserved at " + backup +
                           "): " + ec.message());
  }
  std::filesystem::remove_all(backup, ec);  // best effort; swept next save
  if (metrics_) metrics_->snapshot_save_bytes->Add(total_bytes);
  return Status::Ok();
}

Status ShardedDynamicCService::LoadSnapshot(const std::string& dir) {
  obs::ScopedSpan load_span(tracer_, obs::kSpanSnapshotLoad,
                            obs::kServiceShard);
  ScopedTimer load_timer;
  load_timer.Record(metrics_ ? metrics_->snapshot_load_ms : nullptr);
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    if (!locations_.empty() || open_epoch_.load() != 1) {
      return Status::InvalidArgument(
          "LoadSnapshot requires a freshly constructed service");
    }
  }

  std::string manifest_bytes;
  Status status =
      ReadFileBytes(JoinPath(dir, kManifestName), &manifest_bytes);
  if (!status.ok()) return status;
  Manifest manifest;
  status = ParseManifest(manifest_bytes, &manifest);
  if (!status.ok()) return status;
  load_span.set_epoch(manifest.info.epoch);
  if (manifest.info.num_shards != num_shards()) {
    return Status::InvalidArgument(
        "snapshot holds " + std::to_string(manifest.info.num_shards) +
        " shards, service has " + std::to_string(num_shards()));
  }

  std::lock_guard<std::mutex> ingest_lock(ingest_mutex_);

  // ------------------------------------------------------- service.dat
  uint64_t open_epoch = 1;
  bool serving = false;
  std::vector<ObjectLocation> locations;
  std::unordered_map<uint64_t, uint32_t> group_shard;
  std::unordered_map<uint64_t, uint64_t> group_ops;
  uint64_t placement_version = 0;
  std::unordered_map<uint64_t, uint32_t> placement_overrides;
  uint64_t rejected_batches = 0, rejected_ops = 0, migrations = 0;
  uint32_t rounds_since_rebalance = 0;
  {
    std::string bytes;
    status = ReadVerified(dir, manifest, kServiceFileName, &bytes);
    if (!status.ok()) return status;
    std::istringstream is(bytes);
    std::string tag;
    uint32_t file_version = 0;
    if (!(is >> tag >> file_version) || tag != "service" ||
        file_version != 1) {
      return Status::InvalidArgument("malformed service state header");
    }
    if (!(is >> tag >> open_epoch) || tag != "open_epoch") {
      return Status::InvalidArgument("malformed open_epoch");
    }
    int serving_flag = 0;
    if (!(is >> tag >> serving_flag) || tag != "serving") {
      return Status::InvalidArgument("malformed serving flag");
    }
    serving = serving_flag != 0;
    if (!(is >> tag >> rejected_batches >> rejected_ops >> migrations >>
          rounds_since_rebalance) ||
        tag != "counters") {
      return Status::InvalidArgument("malformed service counters");
    }
    size_t override_count = 0;
    if (!(is >> tag >> placement_version >> override_count) ||
        tag != "placement") {
      return Status::InvalidArgument("malformed placement header");
    }
    for (size_t i = 0; i < override_count; ++i) {
      uint64_t group = 0;
      uint32_t shard = 0;
      if (!(is >> group >> shard) || shard >= num_shards()) {
        return Status::InvalidArgument("malformed placement override");
      }
      placement_overrides[group] = shard;
    }
    size_t location_count = 0;
    // Counts gate allocations, so they are sanity-checked against the
    // (checksum-verified) file size before any container grows: a
    // hand-edited header with a bogus huge count is rejected instead of
    // aborting in a giant resize.
    if (!(is >> tag >> location_count) || tag != "locations" ||
        location_count > bytes.size()) {
      return Status::InvalidArgument("malformed locations header");
    }
    locations.resize(location_count);
    for (ObjectLocation& loc : locations) {
      if (!(is >> loc.shard >> loc.local >> loc.group) ||
          loc.shard >= num_shards()) {
        return Status::InvalidArgument("malformed location entry");
      }
    }
    size_t group_count = 0;
    if (!(is >> tag >> group_count) || tag != "group_shards") {
      return Status::InvalidArgument("malformed group_shards header");
    }
    for (size_t i = 0; i < group_count; ++i) {
      uint64_t group = 0;
      uint32_t shard = 0;
      if (!(is >> group >> shard) || shard >= num_shards()) {
        return Status::InvalidArgument("malformed group_shards entry");
      }
      group_shard[group] = shard;
    }
    size_t ops_count = 0;
    if (!(is >> tag >> ops_count) || tag != "group_ops") {
      return Status::InvalidArgument("malformed group_ops header");
    }
    for (size_t i = 0; i < ops_count; ++i) {
      uint64_t group = 0, ops = 0;
      if (!(is >> group >> ops)) {
        return Status::InvalidArgument("malformed group_ops entry");
      }
      group_ops[group] = ops;
    }
  }

  // ----------------------------------------------------- shard-<i>.dat
  // Parse and apply shard by shard; any error leaves the service
  // partially written, which is why LoadSnapshot demands a fresh
  // instance (the caller just constructs another on failure).
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::string bytes;
    status = ReadVerified(dir, manifest, ShardFileName(s), &bytes);
    if (!status.ok()) return status;
    std::istringstream is(bytes);
    std::string tag;
    size_t shard_index = 0;
    if (!(is >> tag >> shard_index) || tag != "shard" || shard_index != s) {
      return Status::InvalidArgument("malformed shard header");
    }

    size_t total_records = 0;
    // Counts bound allocations, so cap them by the checksum-verified
    // file size (every record/token/numeric occupies at least one byte).
    if (!(is >> tag >> total_records) || tag != "dataset" ||
        total_records > bytes.size()) {
      return Status::InvalidArgument("malformed dataset header");
    }
    std::vector<bool> alive(total_records, false);
    for (size_t r = 0; r < total_records; ++r) {
      int alive_flag = 0;
      if (!(is >> alive_flag)) {
        return Status::InvalidArgument("malformed record header");
      }
      Record record;
      status = ReadRecordWire(is, bytes.size(), &record);
      if (!status.ok()) return status;
      ObjectId id = shard.dataset.Add(std::move(record));
      DYNAMICC_CHECK_EQ(static_cast<size_t>(id), r);
      alive[r] = alive_flag != 0;
      if (!alive[r]) shard.dataset.Remove(id);
    }
    // The similarity graph re-derives from the alive records — the same
    // deterministic reconstruction live migration performs when a group
    // changes shards, so restored edges equal never-restarted ones.
    for (ObjectId id = 0; id < total_records; ++id) {
      if (alive[id]) shard.graph->AddObject(id);
    }

    Clustering clustering;
    status = LoadClusteringWithIds(is, &clustering);
    if (!status.ok()) return status;
    for (ObjectId object : clustering.AssignedObjects()) {
      if (object >= total_records || !alive[object]) {
        return Status::InvalidArgument(
            "clustering references a dead or unknown object");
      }
    }
    shard.session->engine().SetClustering(clustering);

    DynamicCSession::PersistentState session_state;
    int trained_flag = 0;
    if (!(is >> tag >> trained_flag >> session_state.rounds_since_retrain >>
          session_state.rounds_since_observe >>
          session_state.pending_feedback >> session_state.merge_theta >>
          session_state.split_theta) ||
        tag != "session") {
      return Status::InvalidArgument("malformed session state");
    }
    session_state.trained = trained_flag != 0;

    uint64_t trainer_rounds = 0;
    if (!(is >> tag >> trainer_rounds) || tag != "trainer") {
      return Status::InvalidArgument("malformed trainer state");
    }
    SampleSet merge_samples, split_samples;
    status = LoadSampleSet(is, &merge_samples);
    if (!status.ok()) return status;
    status = LoadSampleSet(is, &split_samples);
    if (!status.ok()) return status;

    auto load_model = [&is](const char* expected_tag,
                            BinaryClassifier* model) -> Status {
      std::string model_tag;
      int fitted = 0;
      if (!(is >> model_tag >> fitted) || model_tag != expected_tag) {
        return Status::InvalidArgument("malformed model header");
      }
      if (fitted == 0) return Status::Ok();
      return LoadClassifierInto(is, model);
    };
    status = load_model("model_merge", shard.session->mutable_merge_model());
    if (!status.ok()) return status;
    status = load_model("model_split", shard.session->mutable_split_model());
    if (!status.ok()) return status;

    shard.session->ImportState(session_state);
    shard.session->mutable_trainer()->RestoreState(
        std::move(merge_samples), std::move(split_samples), trainer_rounds);

    int dirty_flag = 0;
    size_t pending_count = 0;
    if (!(is >> tag >> dirty_flag >> pending_count) || tag != "state" ||
        pending_count > bytes.size()) {
      return Status::InvalidArgument("malformed shard state");
    }
    shard.dirty = dirty_flag != 0;
    shard.pending_changed.resize(pending_count);
    for (ObjectId& local : shard.pending_changed) {
      if (!(is >> local)) {
        return Status::InvalidArgument("malformed pending_changed");
      }
    }

    if (!(is >> tag >> shard.accepted_ops >> shard.applied_ops >>
          shard.applied_batches >> shard.worker_rounds >>
          shard.producer_waits >> shard.queue_high_water >>
          shard.batch_grows >> shard.batch_shrinks >> shard.adaptive_batch >>
          shard.cost_ms >> shard.worker_apply_ms >> shard.worker_round_ms) ||
        tag != "shard_counters") {
      return Status::InvalidArgument("malformed shard counters");
    }
    if (!(is >> tag) || tag != "round_detail" ||
        !ReadRecluster(is, &shard.round_detail)) {
      return Status::InvalidArgument("malformed round detail");
    }

    // Rebuild the local->global column of the id map; the global->local
    // direction is validated against it below.
    shard.global_of_local.assign(total_records, kInvalidObject);
  }

  // ----------------------------------------------- cross-shard wiring
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    locations_ = std::move(locations);
    group_shard_ = std::move(group_shard);
    group_ops_ = std::move(group_ops);
    group_members_.clear();
    group_alive_.clear();
    for (size_t global = 0; global < locations_.size(); ++global) {
      const ObjectLocation& loc = locations_[global];
      // locations_ is ordered by admission, so appending here rebuilds
      // each group's admission-ordered member list exactly.
      group_members_[loc.group].push_back(static_cast<ObjectId>(global));
      if (loc.local == kInvalidObject) continue;  // annihilated in a queue
      Shard& shard = *shards_[loc.shard];
      if (loc.local >= shard.global_of_local.size()) {
        return Status::InvalidArgument("location points past its shard");
      }
      if (shard.global_of_local[loc.local] != kInvalidObject) {
        return Status::InvalidArgument("two globals share one local id");
      }
      shard.global_of_local[loc.local] = static_cast<ObjectId>(global);
      if (shard.dataset.IsAlive(loc.local)) {
        group_alive_[loc.group] += 1;
      }
    }
    // Local ids never mapped by any location are slots whose object
    // migrated away (the tombstone stays, the identity moved): legal,
    // and never dereferenced again.
  }

  placement_.Restore(placement_version, std::move(placement_overrides));
  rejected_batches_.store(rejected_batches);
  rejected_ops_.store(rejected_ops);
  migrations_.store(migrations);
  rounds_since_rebalance_.store(rounds_since_rebalance);
  open_epoch_.store(open_epoch);
  for (const auto& shard_ptr : shards_) {
    std::lock_guard<std::mutex> queue_lock(shard_ptr->queue_mutex);
    // Every epoch the saved service sealed was applied before the save.
    shard_ptr->applied_epoch = open_epoch - 1;
  }
  serving_.store(serving, std::memory_order_release);
  if (metrics_) {
    // Manifest entry sizes are checksum-verified against what was read.
    uint64_t total_bytes = manifest_bytes.size();
    for (const ManifestEntry& entry : manifest.files) {
      total_bytes += entry.size;
    }
    metrics_->snapshot_load_bytes->Add(total_bytes);
  }
  return Status::Ok();
}

}  // namespace dynamicc
