#ifndef DYNAMICC_SERVICE_QUERY_API_H_
#define DYNAMICC_SERVICE_QUERY_API_H_

#include <atomic>
#include <cstdint>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "data/record.h"
#include "data/types.h"
#include "obs/metrics.h"
#include "service/read_view.h"
#include "service/sharded_service.h"

namespace dynamicc {

class Follower;

/// The query surface over epoch-pinned read views: wraps one serving
/// target (the primary or a follower) and answers point lookups,
/// k-nearest-cluster probes and partition scans against a pinned view —
/// one acquire-load to pin, zero locks while ingest keeps draining on
/// the same service. Every answer carries the epoch it was served at
/// and its staleness in epochs behind the fleet frontier, so callers
/// can reason about freshness per query instead of per connection.
///
/// QueryClient is cheap (two pointers); make one per target and share
/// it across reader threads freely — all methods are const and
/// thread-safe.
class QueryClient {
 public:
  /// `service` must serve reads (Options::read.serve) and outlive the
  /// client. `name` labels the target in router stats.
  explicit QueryClient(const ShardedDynamicCService* service,
                       std::string name = "primary");

  /// Result envelope: the epoch the answer is pinned to. `staleness`
  /// is filled by the router (epochs behind the frontier); a direct
  /// client leaves it 0.
  struct ResultInfo {
    uint64_t epoch = 0;
    uint64_t staleness = 0;
    /// False only when the target has not published any view yet.
    bool served = false;
  };

  /// Cluster membership of one record: the global ids clustered with
  /// `global_id` at the pinned epoch (including itself), empty when the
  /// id is unknown/dead/unapplied at that epoch.
  struct ClusterOfResult {
    ResultInfo info;
    std::vector<ObjectId> members;
    double avg_intra = 0.0;
  };
  ClusterOfResult ClusterOfRecord(ObjectId global_id) const;

  /// The k clusters most similar to `probe` (scored against cluster
  /// representatives through the view's batched kernel), best first.
  struct NearestResult {
    ResultInfo info;
    struct Hit {
      std::vector<ObjectId> members;
      double similarity = 0.0;
      double avg_intra = 0.0;
    };
    std::vector<Hit> hits;
  };
  NearestResult KNearestClusters(const Record& probe, size_t k) const;

  /// Partition-wide aggregates at the pinned epoch.
  struct StatsResult {
    ResultInfo info;
    ReadViewStats stats;
  };
  StatsResult Stats() const;

  /// Pins the current view directly (power users: iterate slices,
  /// compare canonical forms). Null pin when nothing is published.
  ReadPin Pin() const { return service_->AcquireReadView(); }

  /// The target's newest published view epoch (0 before the first
  /// publish) — what admission compares against the frontier.
  uint64_t view_epoch() const {
    ReadViewRegistry* reg = service_->read_views();
    return reg != nullptr ? reg->current_epoch() : 0;
  }

  const std::string& name() const { return name_; }
  const ShardedDynamicCService* service() const { return service_; }

 private:
  const ShardedDynamicCService* service_;
  std::string name_;
};

/// Fans a mixed read load across the primary and N read-serving
/// followers with per-query staleness admission. The primary's newest
/// sealed epoch is the freshness frontier; each target's staleness is
/// `frontier - target_view_epoch`. A query asking for at most S epochs
/// of staleness is routed round-robin over the targets currently within
/// S (the primary always is, at staleness 0), so reads scale with the
/// follower count while every answer stays inside its caller's bound.
/// Queries whose bound no target can meet are rejected (counted, never
/// silently served stale).
///
/// Failover: DrainFence(promoted_last_read_epoch) tells the router a
/// follower was promoted. In-flight reads pinned at epochs <= the fence
/// finish against replica-era views (their pins keep those views
/// alive); the router immediately stops routing new queries to spent
/// targets and re-resolves the frontier from the promoted primary — a
/// deterministic cut at an epoch, not a grace period.
///
/// Thread-safe: route state is one atomic cursor; target staleness is
/// read from the owners' atomics. Metrics (read.queries, read.admitted,
/// read.rejected_stale, read.query_ms, read.staleness_epochs) land in
/// the registry passed at construction.
class ReadRouter {
 public:
  struct Options {
    /// Default per-query bound when Query::max_staleness_epochs is
    /// kUnbounded: 0 = primary-fresh only.
    uint64_t max_staleness_epochs = 0;
    obs::MetricsRegistry* metrics = nullptr;
  };

  static constexpr uint64_t kUnbounded =
      std::numeric_limits<uint64_t>::max();

  /// `primary` must serve reads; it defines the frontier.
  ReadRouter(const ShardedDynamicCService* primary, Options options);

  /// Adds a read-serving follower target. Not thread-safe against
  /// in-flight queries (assemble the fleet, then serve).
  void AddFollower(const ShardedDynamicCService* follower_service,
                   std::string name);

  /// Routed queries: same result shapes as QueryClient, with
  /// ResultInfo::staleness filled from the frontier at admission.
  /// `max_staleness_epochs` overrides the router default for this one
  /// query; a query no target can satisfy returns served=false with
  /// staleness = the best (smallest) staleness any target offered.
  QueryClient::ClusterOfResult ClusterOfRecord(
      ObjectId global_id, uint64_t max_staleness_epochs = kUnbounded) const;
  QueryClient::NearestResult KNearestClusters(
      const Record& probe, size_t k,
      uint64_t max_staleness_epochs = kUnbounded) const;
  QueryClient::StatsResult Stats(
      uint64_t max_staleness_epochs = kUnbounded) const;

  /// Failover cut (see class doc): records the promoted follower's
  /// last-served read epoch (Follower::last_read_epoch()) as the drain
  /// fence, drops every existing target — old primary and followers are
  /// spent or re-homing — and installs `new_primary` as the sole
  /// serving target. The caller re-adds surviving followers once they
  /// tail the new primary's log. In-flight reads already pinned finish
  /// untouched; a result at an epoch <= drain_fence() is replica-era.
  void DrainFence(uint64_t promoted_last_read_epoch,
                  const ShardedDynamicCService* new_primary);

  /// The admission frontier: the primary's newest sealed epoch.
  uint64_t Frontier() const;
  /// The last failover fence installed (0 = never failed over).
  uint64_t drain_fence() const {
    return drain_fence_.load(std::memory_order_acquire);
  }

  size_t num_targets() const { return targets_.size(); }
  uint64_t queries() const { return queries_.load(std::memory_order_relaxed); }
  uint64_t rejected_stale() const {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  struct Target {
    QueryClient client;
    bool is_primary = false;
  };

  /// One query's admission: resolves the per-query bound (kUnbounded →
  /// router default), measures every target's staleness against the
  /// frontier, picks round-robin among the admissible, and accounts the
  /// queries/admitted/rejected counters + staleness gauge. Returns
  /// nullptr when no target qualifies, with *staleness set to the best
  /// (smallest) staleness any target offered.
  const Target* AdmitQuery(uint64_t max_staleness_epochs,
                           uint64_t* staleness) const;

  std::vector<Target> targets_;
  Options options_;
  mutable std::atomic<uint64_t> cursor_{0};
  std::atomic<uint64_t> drain_fence_{0};

  mutable std::atomic<uint64_t> queries_{0};
  mutable std::atomic<uint64_t> rejected_{0};
  obs::Counter* queries_metric_ = nullptr;
  obs::Counter* admitted_metric_ = nullptr;
  obs::Counter* rejected_metric_ = nullptr;
  obs::Histogram* query_ms_metric_ = nullptr;
  obs::Gauge* staleness_metric_ = nullptr;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_QUERY_API_H_
