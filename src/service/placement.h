#ifndef DYNAMICC_SERVICE_PLACEMENT_H_
#define DYNAMICC_SERVICE_PLACEMENT_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>

namespace dynamicc {

/// One immutable version of the placement: the set of blocking groups
/// whose shard was pinned explicitly (by a migration), keyed by the
/// stable group hash (BlockingKeyHash of the group's blocking key).
/// Groups without an override fall back to the router's content-hash
/// placement, so the table stays proportional to the number of *moved*
/// groups, not the number of groups.
struct PlacementView {
  uint64_t version = 0;
  std::unordered_map<uint64_t, uint32_t> overrides;

  /// Pinned shard for `group`, or nullptr when the group falls back to
  /// hash placement.
  const uint32_t* Find(uint64_t group) const {
    auto it = overrides.find(group);
    return it == overrides.end() ? nullptr : &it->second;
  }
};

/// Monotonically versioned blocking-group -> shard map with copy-on-write
/// publication: readers pin one immutable PlacementView with a single
/// atomic shared_ptr load and route an entire batch against it, so a
/// concurrent migration can never split a batch across two placements.
/// Writers copy the current view, apply the override, and publish the
/// successor under a short writer-side mutex. Versions only grow; two
/// services that perform the same migration sequence publish the same
/// version numbers (the determinism the placement tests pin down).
class PlacementTable {
 public:
  using View = std::shared_ptr<const PlacementView>;

  PlacementTable();

  PlacementTable(const PlacementTable&) = delete;
  PlacementTable& operator=(const PlacementTable&) = delete;

  /// The current version, pinned: the returned view never changes, even
  /// while later versions are published. Lock-free for readers.
  View Current() const;

  uint64_t version() const { return Current()->version; }
  size_t num_overrides() const { return Current()->overrides.size(); }

  /// Publishes a successor version with `group` pinned to `shard` and
  /// returns the new version number. Idempotent assignments still bump
  /// the version: a version is the count of placement decisions, which
  /// keeps replayed migration sequences comparable step by step.
  uint64_t Assign(uint64_t group, uint32_t shard);

  /// Replaces the whole table with a previously persisted state —
  /// version *and* overrides — so a restored service resumes publishing
  /// from exactly where the saved one stopped (version numbers stay
  /// comparable across the restart). Snapshot loading only.
  void Restore(uint64_t version,
               std::unordered_map<uint64_t, uint32_t> overrides);

 private:
  View current_;  // accessed via std::atomic_load / std::atomic_store
  std::mutex write_mutex_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_PLACEMENT_H_
