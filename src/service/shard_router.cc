#include "service/shard_router.h"

#include <utility>

#include "data/blocking.h"
#include "util/logging.h"

namespace dynamicc {

HashShardRouter::HashShardRouter()
    : extractor_([](const Record& record) { return StableShardKey(record); }) {}

HashShardRouter::HashShardRouter(KeyExtractor extractor)
    : extractor_(std::move(extractor)) {
  DYNAMICC_CHECK(extractor_ != nullptr);
}

uint64_t ShardRouter::GroupKey(const Record& record) const {
  return StableShardKeyHash(record);
}

uint64_t HashShardRouter::HashKey(const std::string& key) {
  return BlockingKeyHash(key);
}

uint32_t HashShardRouter::Route(const Record& record,
                                uint32_t num_shards) const {
  DYNAMICC_CHECK_GT(num_shards, 0u);
  return static_cast<uint32_t>(HashKey(extractor_(record)) % num_shards);
}

uint64_t HashShardRouter::GroupKey(const Record& record) const {
  return HashKey(extractor_(record));
}

uint32_t RoundRobinShardRouter::Route(const Record& record,
                                      uint32_t num_shards) const {
  (void)record;
  DYNAMICC_CHECK_GT(num_shards, 0u);
  return next_.fetch_add(1, std::memory_order_relaxed) % num_shards;
}

}  // namespace dynamicc
