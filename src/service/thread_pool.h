#ifndef DYNAMICC_SERVICE_THREAD_POOL_H_
#define DYNAMICC_SERVICE_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace dynamicc {

/// Small fixed-size worker pool for shard-parallel rounds. Tasks are
/// submitted as std::function<void()> and run in FIFO order on the first
/// free worker; the pool is created once per service and reused across
/// rounds, so round latency never pays thread start-up cost.
///
/// The pool makes no fairness or priority guarantees — it is sized to the
/// shard count (or hardware), and every round submits one task per shard,
/// so a plain FIFO queue is exactly the right amount of machinery.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (floored at 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains the queue: blocks until all submitted tasks have finished.
  ~ThreadPool();

  size_t size() const { return workers_.size(); }

  /// Enqueues a task; the future resolves when the task has run (or
  /// carries its exception).
  std::future<void> Submit(std::function<void()> task);

  /// Runs fn(0) .. fn(count - 1) across the pool and blocks until every
  /// call returned. The caller thread executes fn(0) itself (fork-join),
  /// so a count of 1 never touches the queue. The first exception (if
  /// any) is rethrown in the caller. Must not be called from inside a
  /// pool task (the caller's wait would occupy no worker, but nested
  /// waits can deadlock a pool sized smaller than the nesting depth).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  void WorkerLoop();

  std::vector<std::thread> workers_;
  std::queue<std::packaged_task<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable wake_;
  bool stopping_ = false;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_THREAD_POOL_H_
