#ifndef DYNAMICC_SERVICE_THREAD_POOL_H_
#define DYNAMICC_SERVICE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace dynamicc {

/// Fixed-size pool of persistent workers, each with its own FIFO task
/// queue. The pool is created once per service and reused for its whole
/// life, so neither rounds nor ingestion ever pay thread start-up cost.
///
/// Two modes share the same workers:
///
///  - **Pinned submission** (`SubmitTo`): tasks sent to one worker run
///    on that worker in submission order. The async ingestion path pins
///    shard `s`'s drain loop to worker `s % size()`, which gives each
///    shard a long-lived, single-consumer worker — per-shard work is
///    serialized without any per-shard locking of the engine.
///  - **Fork-join** (`ParallelFor`): the caller and up to `size()`
///    workers claim indices from a shared counter until none are left.
///    Claiming (rather than pre-slicing) load-balances uneven per-index
///    cost exactly like a shared run queue — the straggler shard keeps
///    one worker busy while the others finish the rest. Training rounds
///    and the synchronous serving path use this mode.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (floored at 1).
  explicit ThreadPool(size_t num_threads);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Drains every worker's queue: blocks until all submitted tasks have
  /// finished.
  ~ThreadPool();

  size_t size() const { return threads_.size(); }

  /// Enqueues a task on worker `worker % size()`; the future resolves
  /// when the task has run (or carries its exception). Tasks pinned to
  /// the same worker run in submission order (FIFO), one at a time —
  /// there is no work stealing, so a task queued behind a long-running
  /// pinned task waits even while other workers idle.
  std::future<void> SubmitTo(size_t worker, std::function<void()> task);

  /// Runs fn(0) .. fn(count - 1) across the pool and blocks until every
  /// call returned. The caller thread participates (fork-join), so a
  /// count of 1 never touches a queue. Every index runs even if some
  /// throw; the first exception is rethrown in the caller afterwards.
  /// Must not be called from inside a pool task (the nested join could
  /// deadlock a pool sized smaller than the nesting depth).
  void ParallelFor(size_t count, const std::function<void(size_t)>& fn);

 private:
  struct Worker {
    std::mutex mutex;
    std::condition_variable wake;
    std::deque<std::packaged_task<void()>> queue;
  };

  void WorkerLoop(size_t index);

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;
  std::atomic<bool> stopping_{false};
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_THREAD_POOL_H_
