#include "service/placement.h"

#include <atomic>
#include <utility>

namespace dynamicc {

PlacementTable::PlacementTable()
    : current_(std::make_shared<PlacementView>()) {}

PlacementTable::View PlacementTable::Current() const {
  return std::atomic_load(&current_);
}

uint64_t PlacementTable::Assign(uint64_t group, uint32_t shard) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  auto next = std::make_shared<PlacementView>(*Current());
  next->version += 1;
  next->overrides[group] = shard;
  uint64_t version = next->version;
  std::atomic_store(&current_, View(std::move(next)));
  return version;
}

void PlacementTable::Restore(
    uint64_t version, std::unordered_map<uint64_t, uint32_t> overrides) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  auto next = std::make_shared<PlacementView>();
  next->version = version;
  next->overrides = std::move(overrides);
  std::atomic_store(&current_, View(std::move(next)));
}

}  // namespace dynamicc
