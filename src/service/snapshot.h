#ifndef DYNAMICC_SERVICE_SNAPSHOT_H_
#define DYNAMICC_SERVICE_SNAPSHOT_H_

#include <cstdint>
#include <string>

#include "util/status.h"

namespace dynamicc {

/// On-disk format of the durable service snapshots written by
/// ShardedDynamicCService::SaveSnapshot (implemented in snapshot.cc):
/// one directory holding
///
///   MANIFEST       format version, epoch, shard count, placement
///                  version, and a (name, size, FNV-1a-64) line per
///                  payload file — the integrity root. LoadSnapshot
///                  re-hashes every payload against it, so corruption
///                  and truncation anywhere are detected before any
///                  state is touched.
///   service.dat    the cross-shard state: placement table (version +
///                  overrides), global id -> (shard, local, group) map,
///                  group ownership + per-group op counts, cumulative
///                  service counters, the open epoch and serving flag.
///   shard-<i>.dat  one per shard: dataset records (tombstones
///                  included — id assignment must continue unchanged),
///                  the id-exact clustering, session cadence state,
///                  trainer sample sets, and the fitted models.
///
/// Everything is line-oriented text; doubles are written with 17
/// significant digits (exact round trip) and strings length-prefixed
/// (arbitrary bytes survive; wire conventions in util/wire.h).
/// Similarity graphs and cluster aggregates are *not* stored: both
/// re-derive deterministically from the dataset (the same property live
/// group migration already relies on).
///
/// Writes are crash-atomic: SaveSnapshot stages the whole directory in
/// a "<dir>.saving" scratch (manifest last) and publishes by
/// rename-aside (previous snapshot to "<dir>.old", scratch into place,
/// backup dropped last), so a kill at any point leaves at least one
/// complete snapshot on disk — and a half-written directory, should
/// one ever be pointed at, is missing its manifest or fails its
/// checksums and is rejected on load.

/// Bumped whenever the layout changes incompatibly; LoadSnapshot
/// rejects other versions.
inline constexpr uint64_t kSnapshotFormatVersion = 1;

/// Header of a snapshot directory, readable without loading it.
struct SnapshotInfo {
  uint64_t format_version = 0;
  /// The flush epoch the snapshot was sealed at: every operation of
  /// epochs <= this is reflected, none later.
  uint64_t epoch = 0;
  uint32_t num_shards = 0;
  uint64_t placement_version = 0;
};

/// FNV-1a 64 over a byte string — the per-file checksum in MANIFEST
/// (same stable hash family as BlockingKeyHash, no std::hash).
uint64_t SnapshotChecksum(const std::string& bytes);

/// Reads and validates `dir`/MANIFEST's header fields (format version
/// check included; per-file checksums are verified by LoadSnapshot).
Status ReadSnapshotInfo(const std::string& dir, SnapshotInfo* info);

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_SNAPSHOT_H_
