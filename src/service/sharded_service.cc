#include "service/sharded_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace dynamicc {

namespace {

size_t DefaultThreadCount(uint32_t num_shards) {
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  return std::min<size_t>(num_shards, hardware);
}

}  // namespace

ShardedDynamicCService::ShardedDynamicCService(
    Options options, std::unique_ptr<ShardRouter> router,
    ShardEnvironmentFactory factory)
    : options_(options),
      router_(router ? std::move(router)
                     : std::make_unique<HashShardRouter>()),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : DefaultThreadCount(options.num_shards)) {
  DYNAMICC_CHECK_GT(options_.num_shards, 0u);
  DYNAMICC_CHECK(factory != nullptr);
  shards_.reserve(options_.num_shards);
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->env = factory();
    DYNAMICC_CHECK(shard->env.measure != nullptr);
    DYNAMICC_CHECK(shard->env.blocker != nullptr);
    DYNAMICC_CHECK(shard->env.validator != nullptr);
    DYNAMICC_CHECK(shard->env.batch != nullptr);
    DYNAMICC_CHECK(shard->env.merge_model != nullptr);
    DYNAMICC_CHECK(shard->env.split_model != nullptr);
    shard->graph = std::make_unique<SimilarityGraph>(
        &shard->dataset, shard->env.measure.get(),
        std::move(shard->env.blocker), shard->env.min_similarity);
    shard->session = std::make_unique<DynamicCSession>(
        &shard->dataset, shard->graph.get(), shard->env.batch.get(),
        shard->env.validator.get(), std::move(shard->env.merge_model),
        std::move(shard->env.split_model), options_.session);
    shards_.push_back(std::move(shard));
  }
}

std::vector<ObjectId> ShardedDynamicCService::ApplyOperations(
    const OperationBatch& operations) {
  std::vector<OperationBatch> per_shard(shards_.size());
  // What each session must report back as changed ids. Adds get their
  // local id pre-assigned (Dataset assigns dense sequential ids, so the
  // next add on a shard gets total_count() + already-queued adds).
  std::vector<std::vector<ObjectId>> expected_changed(shards_.size());
  std::vector<size_t> pending_adds(shards_.size(), 0);
  std::vector<ObjectId> changed_global;

  for (const DataOperation& op : operations) {
    switch (op.kind) {
      case DataOperation::Kind::kAdd: {
        uint32_t target = router_->Route(op.record, num_shards());
        Shard& shard = *shards_[target];
        ObjectId local = static_cast<ObjectId>(shard.dataset.total_count() +
                                               pending_adds[target]++);
        ObjectId global = static_cast<ObjectId>(locations_.size());
        locations_.push_back({target, local});
        DYNAMICC_CHECK_EQ(shard.global_of_local.size(), local);
        shard.global_of_local.push_back(global);
        per_shard[target].push_back(op);
        expected_changed[target].push_back(local);
        changed_global.push_back(global);
        break;
      }
      case DataOperation::Kind::kRemove: {
        const ObjectLocation& loc = locations_.at(op.target);
        DataOperation local_op = op;
        local_op.target = loc.local;
        per_shard[loc.shard].push_back(local_op);
        break;
      }
      case DataOperation::Kind::kUpdate: {
        // Updates keep both their global id and their shard: the owning
        // shard already holds the object's edges, and rerouting by the
        // new content would break id stability (§6.1 semantics).
        const ObjectLocation& loc = locations_.at(op.target);
        DataOperation local_op = op;
        local_op.target = loc.local;
        per_shard[loc.shard].push_back(local_op);
        expected_changed[loc.shard].push_back(loc.local);
        changed_global.push_back(op.target);
        break;
      }
    }
  }

  // Shard slices are disjoint, so they apply concurrently. Only shards
  // with work are dispatched: waking a worker for an empty slice costs
  // more than the slice.
  std::vector<size_t> busy;
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (!per_shard[s].empty()) busy.push_back(s);
  }
  pool_.ParallelFor(busy.size(), [&](size_t i) {
    size_t s = busy[i];
    shards_[s]->dirty = true;
    std::vector<ObjectId> local_changed =
        shards_[s]->session->ApplyOperations(per_shard[s]);
    DYNAMICC_CHECK(local_changed == expected_changed[s])
        << "shard dataset assigned ids out of line with the router's "
           "pre-assignment";
  });
  return changed_global;
}

std::vector<std::vector<ObjectId>> ShardedDynamicCService::LocalizeChanged(
    const std::vector<ObjectId>& changed) const {
  std::vector<std::vector<ObjectId>> local(shards_.size());
  for (ObjectId global : changed) {
    const ObjectLocation& loc = locations_.at(global);
    local[loc.shard].push_back(loc.local);
  }
  return local;
}

ServiceReport ShardedDynamicCService::ObserveBatchRound(
    const std::vector<ObjectId>& changed) {
  std::vector<std::vector<ObjectId>> local_changed = LocalizeChanged(changed);
  ServiceReport report;
  report.train_shards.resize(shards_.size());

  Timer wall;
  pool_.ParallelFor(shards_.size(), [&](size_t s) {
    Shard& shard = *shards_[s];
    ShardTrainStats& stats = report.train_shards[s];
    stats.shard = static_cast<uint32_t>(s);
    Timer timer;
    if (shard.dataset.alive_count() > 0) {
      stats.report = shard.session->ObserveBatchRound(local_changed[s]);
      stats.participated = true;
    }
    shard.dirty = false;  // the batch result is a fresh fixpoint
    stats.round_ms = timer.ElapsedMillis();
    stats.objects = shard.dataset.alive_count();
    stats.clusters = shard.session->engine().clustering().num_clusters();
  });
  report.wall_ms = wall.ElapsedMillis();

  for (const ShardTrainStats& stats : report.train_shards) {
    report.total_shard_ms += stats.round_ms;
    report.max_shard_ms = std::max(report.max_shard_ms, stats.round_ms);
    report.total_objects += stats.objects;
    report.total_clusters += stats.clusters;
    report.evolution_steps += stats.report.step_count;
  }
  return report;
}

ServiceReport ShardedDynamicCService::DynamicRound(
    const std::vector<ObjectId>& changed) {
  std::vector<std::vector<ObjectId>> local_changed = LocalizeChanged(changed);
  ServiceReport report;
  report.dynamic_shards.resize(shards_.size());

  Timer wall;
  // A shard sits the round out while empty, or clean — no operation
  // landed on it since its last round, so its clustering is already a
  // DynamicC fixpoint and re-running would change nothing. Only
  // participants are dispatched to the pool.
  std::vector<size_t> serving;
  for (size_t s = 0; s < shards_.size(); ++s) {
    ShardDynamicStats& stats = report.dynamic_shards[s];
    stats.shard = static_cast<uint32_t>(s);
    stats.objects = shards_[s]->dataset.alive_count();
    stats.clusters = shards_[s]->session->engine().clustering().num_clusters();
    if (shards_[s]->dirty && stats.objects > 0) {
      serving.push_back(s);
    }
  }
  pool_.ParallelFor(serving.size(), [&](size_t i) {
    size_t s = serving[i];
    Shard& shard = *shards_[s];
    ShardDynamicStats& stats = report.dynamic_shards[s];
    Timer timer;
    if (shard.session->is_trained()) {
      stats.report = shard.session->DynamicRound(local_changed[s]);
    } else {
      // The shard cannot serve dynamically yet — its slice of the
      // training phase produced no evolution steps, or its first data
      // arrived after training ended. Serve it with an observed batch
      // round instead (mirroring the session's observe_every path):
      // the output is the correct batch clustering either way, and the
      // round doubles as this shard's training opportunity.
      DynamicCSession::TrainReport observe =
          shard.session->ObserveBatchRound(local_changed[s]);
      stats.report.recluster_ms = observe.batch_ms + observe.derive_ms;
      stats.report.retrain_ms = observe.fit_ms;
      stats.report.used_batch = true;
    }
    stats.participated = true;
    shard.dirty = false;
    stats.round_ms = timer.ElapsedMillis();
    stats.objects = shard.dataset.alive_count();
    stats.clusters = shard.session->engine().clustering().num_clusters();
  });
  report.wall_ms = wall.ElapsedMillis();

  for (const ShardDynamicStats& stats : report.dynamic_shards) {
    report.total_shard_ms += stats.round_ms;
    report.max_shard_ms = std::max(report.max_shard_ms, stats.round_ms);
    report.total_objects += stats.objects;
    report.total_clusters += stats.clusters;
    AccumulateRecluster(&report.combined, stats.report.detail);
  }
  return report;
}

std::vector<std::vector<ObjectId>> ShardedDynamicCService::GlobalClusters()
    const {
  std::vector<std::vector<ObjectId>> clusters;
  for (const auto& shard : shards_) {
    for (const auto& members :
         shard->session->engine().clustering().CanonicalClusters()) {
      std::vector<ObjectId> global_members;
      global_members.reserve(members.size());
      for (ObjectId local : members) {
        global_members.push_back(shard->global_of_local.at(local));
      }
      std::sort(global_members.begin(), global_members.end());
      clusters.push_back(std::move(global_members));
    }
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

size_t ShardedDynamicCService::total_objects() const {
  size_t total = 0;
  for (const auto& shard : shards_) total += shard->dataset.alive_count();
  return total;
}

size_t ShardedDynamicCService::total_clusters() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    total += shard->session->engine().clustering().num_clusters();
  }
  return total;
}

bool ShardedDynamicCService::is_trained() const {
  for (const auto& shard : shards_) {
    if (shard->dataset.alive_count() > 0 && !shard->session->is_trained()) {
      return false;
    }
  }
  return true;
}

uint32_t ShardedDynamicCService::ShardOfObject(ObjectId global_id) const {
  return locations_.at(global_id).shard;
}

const DynamicCSession& ShardedDynamicCService::session(uint32_t shard) const {
  return *shards_.at(shard)->session;
}

const Dataset& ShardedDynamicCService::dataset(uint32_t shard) const {
  return shards_.at(shard)->dataset;
}

}  // namespace dynamicc
