#include "service/sharded_service.h"

#include <algorithm>
#include <thread>
#include <unordered_set>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace dynamicc {

namespace {

size_t DefaultThreadCount(uint32_t num_shards) {
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  return std::min<size_t>(num_shards, hardware);
}

}  // namespace

ShardedDynamicCService::ShardedDynamicCService(
    Options options, std::unique_ptr<ShardRouter> router,
    ShardEnvironmentFactory factory)
    : options_(options),
      router_(router ? std::move(router)
                     : std::make_unique<HashShardRouter>()),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : DefaultThreadCount(options.num_shards)) {
  DYNAMICC_CHECK_GT(options_.num_shards, 0u);
  DYNAMICC_CHECK(factory != nullptr);
  // Reject the invalid combination up front: the auto-rebalance cadence
  // needs per-group loads, which only exist under content-addressed
  // routing — failing here beats CHECK-aborting mid-serving at the
  // K-th barrier.
  DYNAMICC_CHECK(options_.rebalance.every_rounds == 0 ||
                 router_->ContentAddressed())
      << "automatic rebalancing requires a content-addressed router ("
      << router_->Name() << " scatters groups across shards)";
  shards_.reserve(options_.num_shards);
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->env = factory();
    DYNAMICC_CHECK(shard->env.measure != nullptr);
    DYNAMICC_CHECK(shard->env.blocker != nullptr);
    DYNAMICC_CHECK(shard->env.batch != nullptr);
    DYNAMICC_CHECK(shard->env.merge_model != nullptr);
    DYNAMICC_CHECK(shard->env.split_model != nullptr);
    SimilarityGraph::Options sim_core = shard->env.sim_core;
    sim_core.metrics = options_.obs.metrics;
    shard->graph = std::make_unique<SimilarityGraph>(
        &shard->dataset, shard->env.measure.get(),
        std::move(shard->env.blocker), shard->env.min_similarity, sim_core);
    // Validator-only environments (DBSCAN) build their validator against
    // the shard's graph, which only exists now.
    if (shard->env.validator == nullptr && shard->env.validator_factory) {
      shard->env.validator = shard->env.validator_factory(shard->graph.get());
    }
    DYNAMICC_CHECK(shard->env.validator != nullptr)
        << "environment provides neither a validator nor a validator "
           "factory";
    shard->session = std::make_unique<DynamicCSession>(
        &shard->dataset, shard->graph.get(), shard->env.batch.get(),
        shard->env.validator.get(), std::move(shard->env.merge_model),
        std::move(shard->env.split_model), options_.session);
    shards_.push_back(std::move(shard));
  }

  // Metric handles resolve once, here; the hot paths only ever test
  // `metrics_` and poke pre-resolved atomics. Names are catalogued in
  // docs/metrics.md — keep the two in sync.
  tracer_ = options_.obs.tracer;
  if (options_.obs.metrics != nullptr) {
    obs::MetricsRegistry& reg = *options_.obs.metrics;
    metrics_ = std::make_unique<ServiceMetrics>();
    metrics_->admit_ms = reg.GetHistogram("ingest.admit_ms");
    metrics_->queue_wait_ms = reg.GetHistogram("queue.wait_ms");
    metrics_->drain_batch_ops = reg.GetHistogram("drain.batch_ops");
    metrics_->drain_apply_ms = reg.GetHistogram("drain.apply_ms");
    metrics_->worker_round_ms = reg.GetHistogram("worker.round_ms");
    metrics_->barrier_ms = reg.GetHistogram("barrier.round_ms");
    metrics_->epoch_seal_ms = reg.GetHistogram("epoch.seal_ms");
    metrics_->migration_ms = reg.GetHistogram("migration.ms");
    metrics_->read_publish_ms = reg.GetHistogram("read.publish_ms");
    metrics_->snapshot_save_ms = reg.GetHistogram("snapshot.save_ms");
    metrics_->snapshot_load_ms = reg.GetHistogram("snapshot.load_ms");
    metrics_->epochs_sealed = reg.GetCounter("epoch.sealed");
    metrics_->migration_ops_rehomed = reg.GetCounter("migration.ops_rehomed");
    metrics_->rebalance_passes = reg.GetCounter("placement.rebalance_passes");
    metrics_->snapshot_save_bytes = reg.GetCounter("snapshot.save_bytes");
    metrics_->snapshot_load_bytes = reg.GetCounter("snapshot.load_bytes");
    metrics_->accepted_ops = reg.GetGauge("ingest.accepted_ops");
    metrics_->rejected_batches = reg.GetGauge("ingest.rejected_batches");
    metrics_->rejected_ops = reg.GetGauge("ingest.rejected_ops");
    metrics_->coalesced_ops = reg.GetGauge("ingest.coalesced_ops");
    metrics_->pending_ops = reg.GetGauge("ingest.pending_ops");
    metrics_->applied_ops = reg.GetGauge("ingest.applied_ops");
    metrics_->open_epoch = reg.GetGauge("epoch.open");
    metrics_->applied_epoch = reg.GetGauge("epoch.applied");
    metrics_->applied_batches = reg.GetGauge("ingest.applied_batches");
    metrics_->worker_rounds = reg.GetGauge("worker.rounds");
    metrics_->producer_waits = reg.GetGauge("ingest.producer_waits");
    metrics_->queue_high_water = reg.GetGauge("queue.high_water");
    metrics_->record_imbalance = reg.GetGauge("placement.record_imbalance");
    metrics_->cost_imbalance = reg.GetGauge("placement.cost_imbalance");
    metrics_->placement_version = reg.GetGauge("placement.version");
    metrics_->groups_migrated = reg.GetGauge("placement.groups_migrated");
    metrics_->queue_depth.reserve(options_.num_shards);
    for (uint32_t s = 0; s < options_.num_shards; ++s) {
      metrics_->queue_depth.push_back(
          reg.GetGauge(obs::ShardLabel("queue.depth", s)));
    }
  }

  if (options_.read.serve) {
    read_views_ = std::make_unique<ReadViewRegistry>(options_.obs.metrics);
  }
}

ShardedDynamicCService::IngestResult ShardedDynamicCService::Ingest(
    const OperationBatch& operations) {
  return IngestInternal(operations, options_.async.backpressure);
}

std::vector<ObjectId> ShardedDynamicCService::ApplyOperations(
    const OperationBatch& operations) {
  IngestResult result =
      IngestInternal(operations, BackpressurePolicy::kBlock);
  return std::move(result.changed);
}

ShardedDynamicCService::IngestResult ShardedDynamicCService::IngestInternal(
    const OperationBatch& operations, BackpressurePolicy policy) {
  // Producers serialize here: global ids come out dense in admission
  // order, and a kReject capacity check stays atomic with its enqueue.
  std::lock_guard<std::mutex> ingest_lock(ingest_mutex_);
  // The admit span covers the whole producer-side call: routing, id
  // assignment, enqueue (including any backpressure stall, which also
  // gets its own queue.wait span). Its seq range is the assigned
  // global-id range when the batch carries adds.
  obs::ScopedSpan admit_span(tracer_, obs::kSpanIngestAdmit,
                             obs::kServiceShard,
                             open_epoch_.load(std::memory_order_relaxed));
  ScopedTimer admit_timer;
  admit_timer.Record(metrics_ ? metrics_->admit_ms : nullptr);
  const bool async = options_.async.enabled;
  const size_t depth = std::max<size_t>(1, options_.async.queue_depth);

  // The whole batch routes against one pinned placement version.
  // Migrations publish new versions under ingest_mutex_, so the pin is
  // also a proof: no batch ever straddles a placement swap.
  PlacementTable::View placement = placement_.Current();

  // Pass 1 — route every operation without touching state: adds by
  // placement override (falling back to the router for groups never
  // moved), removes/updates to the shard that owns the target. A
  // target may be an add from this very batch (its id is not assigned
  // until pass 2), so prospective ids resolve against the batch's own
  // adds.
  std::vector<uint32_t> shard_of(operations.size());
  std::vector<size_t> slice_size(shards_.size(), 0);
  std::vector<uint32_t> batch_add_shards;
  std::vector<uint64_t> batch_add_groups;
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    const size_t base = locations_.size();
    for (size_t i = 0; i < operations.size(); ++i) {
      const DataOperation& op = operations[i];
      uint32_t target;
      if (op.kind == DataOperation::Kind::kAdd) {
        uint64_t group = router_->GroupKey(op.record);
        const uint32_t* pinned = placement->Find(group);
        target = pinned ? *pinned : router_->Route(op.record, num_shards());
        batch_add_shards.push_back(target);
        batch_add_groups.push_back(group);
      } else if (op.target < base) {
        target = locations_.at(op.target).shard;
      } else {
        // Intra-batch reference: the target is this batch's add number
        // (op.target - base), which pass 2 will admit under exactly
        // that id.
        target = batch_add_shards.at(op.target - base);
      }
      shard_of[i] = target;
      slice_size[target] += 1;
    }
  }

  // kReject decides before any id is assigned, so a turned-away batch
  // leaves no trace. The depth bounds *backlog*, not batch size: a
  // shard with an empty queue admits any slice (transiently exceeding
  // the depth), so an oversized batch always makes progress on retry
  // instead of being rejected forever. The check is conservative
  // otherwise: it charges the slice's full size even though coalescing
  // may shrink it on arrival.
  if (async && policy == BackpressurePolicy::kReject) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (slice_size[s] == 0) continue;
      std::lock_guard<std::mutex> lock(shards_[s]->queue_mutex);
      size_t pending = shards_[s]->log.pending();
      if (pending > 0 && pending + slice_size[s] > depth) {
        rejected_batches_.fetch_add(1);
        rejected_ops_.fetch_add(operations.size());
        return IngestResult{false, {}};
      }
    }
  }

  // Pass 2 — commit: assign global ids densely in admission order and
  // build the per-shard slices. Adds carry their assigned id in
  // `target` (the OperationLog coalescing handle; cleared again before
  // the slice reaches the session).
  IngestResult result;
  std::vector<OperationBatch> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    per_shard[s].reserve(slice_size[s]);
  }
  // The replication feed journals the batch exactly as admitted: global
  // admission order, adds stamped with their assigned ids — replaying it
  // through a fresh service's own ingest boundary reassigns the same
  // ids. The copy is made outside the locks and stamped afterwards
  // (ids are dense from the pre-commit watermark, so the k-th add got
  // first_add_id + k); the sink takes ownership, so this is the only
  // copy the feed costs the ingest path.
  OperationBatch journal;
  if (observer_ != nullptr) journal = operations;
  ObjectId first_add_id = kInvalidObject;
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    first_add_id = static_cast<ObjectId>(locations_.size());
    size_t add_index = 0;
    for (size_t i = 0; i < operations.size(); ++i) {
      DataOperation routed = operations[i];
      if (routed.kind == DataOperation::Kind::kAdd) {
        ObjectId global = static_cast<ObjectId>(locations_.size());
        uint64_t group = batch_add_groups[add_index++];
        locations_.push_back(
            ObjectLocation{shard_of[i], kInvalidObject, group});
        group_members_[group].push_back(global);
        group_shard_[group] = shard_of[i];
        routed.target = global;
        result.changed.push_back(global);
      } else if (routed.kind == DataOperation::Kind::kUpdate) {
        result.changed.push_back(routed.target);
      }
      per_shard[shard_of[i]].push_back(std::move(routed));
    }
  }
  if (observer_ != nullptr && !journal.empty()) {
    ObjectId next_add_id = first_add_id;
    for (DataOperation& op : journal) {
      if (op.kind == DataOperation::Kind::kAdd) op.target = next_add_id++;
    }
    observer_->OnAdmitted(std::move(journal));
  }
  if (!batch_add_shards.empty()) {
    admit_span.set_range(first_add_id,
                         first_add_id + batch_add_shards.size());
  }

  if (!async) {
    // Shard slices are disjoint, so they apply concurrently. Only
    // shards with work are dispatched: waking a worker for an empty
    // slice costs more than the slice.
    std::vector<size_t> busy;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!per_shard[s].empty()) busy.push_back(s);
    }
    pool_.ParallelFor(busy.size(), [&](size_t i) {
      size_t s = busy[i];
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> round_lock(shard.round_mutex);
      shard.dirty = true;
      ApplyBatchToShard(s, per_shard[s]);
      std::lock_guard<std::mutex> queue_lock(shard.queue_mutex);
      shard.accepted_ops += per_shard[s].size();
      shard.applied_ops += per_shard[s].size();
    });
    return result;
  }

  // Pass 3 — enqueue with backpressure and wake each shard's worker.
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    bool schedule = false;
    {
      std::unique_lock<std::mutex> lock(shard.queue_mutex);
      bool counted_wait = false;
      Timer wait_timer;  // read only when a backpressure stall happened
      for (DataOperation& op : per_shard[s]) {
        // Only kBlock meters the queue op-by-op; a kReject batch was
        // admitted as a whole above and must never stall the producer
        // (its slice may transiently exceed the depth).
        while (policy == BackpressurePolicy::kBlock &&
               shard.log.pending() >= depth) {
          // A worker must be in flight before we sleep, or nobody would
          // ever make room (a slice larger than the queue depth fills
          // it before this call returns).
          if (!shard.worker_busy) {
            shard.worker_busy = true;
            pool_.SubmitTo(s, [this, s] { WorkerDrain(s); });
            continue;
          }
          if (!counted_wait) {
            shard.producer_waits += 1;
            counted_wait = true;
            wait_timer.Reset();
          }
          shard.queue_not_full.wait(lock);
        }
        shard.log.Append(std::move(op));
        shard.accepted_ops += 1;
        shard.queue_high_water =
            std::max(shard.queue_high_water, shard.log.pending());
      }
      if (counted_wait) {
        // One wait episode per (batch, shard): from the first stall to
        // the slice being fully enqueued.
        const double wait_ms = wait_timer.ElapsedMillis();
        if (metrics_) metrics_->queue_wait_ms->Record(wait_ms);
        if (tracer_ != nullptr) {
          obs::TraceSpan span;
          span.name = obs::kSpanQueueWait;
          span.shard = static_cast<uint32_t>(s);
          span.epoch = open_epoch_.load(std::memory_order_relaxed);
          span.duration_ns = static_cast<uint64_t>(wait_ms * 1e6);
          span.start_ns = tracer_->NowNs() - span.duration_ns;
          tracer_->Record(span);
        }
      }
      if (metrics_) {
        metrics_->queue_depth[s]->Set(
            static_cast<double>(shard.log.pending()));
      }
      // Stamp the ambient trace context (set by a traced RPC handler)
      // on the queue so the drain worker can join the trace.
      if (tracer_ != nullptr) {
        const obs::TraceContext ctx = obs::CurrentTraceContext();
        if (ctx.active()) shard.queue_trace = ctx;
      }
      if (!shard.log.empty() && !shard.worker_busy) {
        shard.worker_busy = true;
        schedule = true;
      }
    }
    if (schedule) pool_.SubmitTo(s, [this, s] { WorkerDrain(s); });
  }
  return result;
}

std::vector<ObjectId> ShardedDynamicCService::ApplyBatchToShard(
    size_t shard_index, const OperationBatch& batch) {
  Shard& shard = *shards_[shard_index];
  size_t base = shard.dataset.total_count();
  OperationBatch local_ops;
  local_ops.reserve(batch.size());
  std::vector<ObjectId> expected;
  size_t adds = 0;
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    for (const DataOperation& op : batch) {
      DataOperation local = op;
      if (op.kind == DataOperation::Kind::kAdd) {
        ObjectId global = op.target;
        DYNAMICC_CHECK(global != kInvalidObject)
            << "add reached a shard without an admission-assigned id";
        ObjectId local_id = static_cast<ObjectId>(base + adds++);
        locations_[global].local = local_id;
        group_alive_[locations_[global].group] += 1;
        group_ops_[locations_[global].group] += 1;
        local.target = kInvalidObject;
        expected.push_back(local_id);
        DYNAMICC_CHECK_EQ(shard.global_of_local.size(), local_id);
        shard.global_of_local.push_back(global);
      } else {
        const ObjectLocation& loc = locations_.at(op.target);
        DYNAMICC_CHECK_EQ(loc.shard, static_cast<uint32_t>(shard_index));
        DYNAMICC_CHECK(loc.local != kInvalidObject)
            << "operation targets an object that never materialized";
        local.target = loc.local;
        group_ops_[loc.group] += 1;
        if (op.kind == DataOperation::Kind::kUpdate) {
          expected.push_back(loc.local);
        } else {
          group_alive_[loc.group] -= 1;
        }
      }
      local_ops.push_back(std::move(local));
    }
  }
  std::vector<ObjectId> changed = shard.session->ApplyOperations(local_ops);
  DYNAMICC_CHECK(changed == expected)
      << "shard dataset assigned ids out of line with the service's "
         "admission-order pre-assignment";
  shard.state_version += 1;
  return changed;
}

void ShardedDynamicCService::WorkerDrain(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  // Several shards may share one pool worker; yielding after a few
  // batches round-robins them instead of letting a continuously-fed
  // shard starve its neighbours. On yield the shard stays marked busy
  // and the resubmitted task owns the remaining queue.
  constexpr int kBatchesBeforeYield = 4;
  for (int iteration = 0; iteration < kBatchesBeforeYield; ++iteration) {
    OperationLog::Drained drained;
    uint64_t span_seq_begin = 0;
    obs::TraceContext drain_trace;
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      if (shard.paused) {
        // A migration is operating on this shard: park at the batch
        // boundary (no drained batch stays in flight); the migration
        // reschedules the worker once the surgery is done.
        AdvanceEpochsLocked(&shard);
        shard.worker_busy = false;
        shard.queue_drained.notify_all();
        return;
      }
      if (shard.log.empty()) {
        shard.log.Take(0);  // GC entries annihilated in place
        AdvanceEpochsLocked(&shard);
        shard.worker_busy = false;
        shard.queue_drained.notify_all();
        return;
      }
      size_t bite = options_.async.max_batch;
      if (options_.async.adaptive_batch) {
        if (shard.adaptive_batch == 0) {
          shard.adaptive_batch = std::max<size_t>(1, options_.async.min_batch);
        }
        bite = shard.adaptive_batch;
      }
      if (tracer_ != nullptr) {
        span_seq_begin = shard.log.first_pending_sequence();
        // Take-and-clear with the batch: the drain span joins the trace
        // of the enqueue that fed this batch.
        drain_trace = shard.queue_trace;
        shard.queue_trace = obs::TraceContext{};
      }
      drained = shard.log.Take(bite);
      shard.queue_not_full.notify_all();
      if (metrics_) {
        metrics_->queue_depth[shard_index]->Set(
            static_cast<double>(shard.log.pending()));
      }
    }

    double apply_ms = 0.0;
    double round_ms = 0.0;
    bool rounded = false;
    DynamicCSession::DynamicReport round_report;
    const uint64_t drain_epoch = open_epoch_.load(std::memory_order_relaxed);
    if (metrics_) {
      metrics_->drain_batch_ops->Record(
          static_cast<double>(drained.ops.size()));
    }
    {
      std::lock_guard<std::mutex> round_lock(shard.round_mutex);
      std::vector<ObjectId> changed;
      {
        obs::ScopedSpan span(tracer_, obs::kSpanDrainApply,
                             static_cast<uint32_t>(shard_index), drain_epoch);
        span.set_range(span_seq_begin, drained.end_sequence);
        span.AdoptContext(drain_trace);
        ScopedTimer timer;
        timer.Set(&apply_ms)
            .Record(metrics_ ? metrics_->drain_apply_ms : nullptr);
        changed = ApplyBatchToShard(shard_index, drained.ops);
      }
      shard.dirty = true;
      // Rounds run in the background only once the whole service is
      // trained; until then application is deferred but rounds stay
      // with the explicit barriers, so training matches the
      // synchronous path exactly.
      if (serving_.load(std::memory_order_acquire) &&
          shard.session->is_trained()) {
        if (!shard.pending_changed.empty()) {
          changed.insert(changed.begin(), shard.pending_changed.begin(),
                         shard.pending_changed.end());
          shard.pending_changed.clear();
        }
        {
          obs::ScopedSpan span(tracer_, obs::kSpanWorkerRound,
                               static_cast<uint32_t>(shard_index),
                               drain_epoch);
          ScopedTimer timer;
          timer.Set(&round_ms)
              .Record(metrics_ ? metrics_->worker_round_ms : nullptr);
          round_report = shard.session->DynamicRound(changed);
        }
        shard.dirty = false;
        shard.state_version += 1;
        rounded = true;
      } else {
        shard.pending_changed.insert(shard.pending_changed.end(),
                                     changed.begin(), changed.end());
      }
    }
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      shard.applied_batches += 1;
      shard.applied_ops += drained.ops.size();
      // The drained batch is applied: the reflected prefix advanced, and
      // with it possibly one or more epoch watermarks.
      AdvanceEpochsLocked(&shard);
      shard.worker_apply_ms += apply_ms;
      if (rounded) {
        shard.worker_rounds += 1;
        shard.worker_round_ms += round_ms;
        shard.cost_ms += round_ms;
        AccumulateRecluster(&shard.round_detail, round_report.detail);
      }
      if (options_.async.adaptive_batch && shard.adaptive_batch > 0) {
        AdaptiveBiteDecision next = NextAdaptiveBite(
            shard.adaptive_batch, apply_ms + round_ms, shard.log.pending(),
            options_.async);
        shard.adaptive_batch = next.bite;
        if (next.grew) shard.batch_grows += 1;
        if (next.shrank) shard.batch_shrinks += 1;
      }
    }
  }
  pool_.SubmitTo(shard_index, [this, shard_index] { WorkerDrain(shard_index); });
}

void ShardedDynamicCService::Drain() {
  if (!async()) return;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock<std::mutex> lock(shard.queue_mutex);
    shard.queue_drained.wait(
        lock, [&shard] { return shard.log.empty() && !shard.worker_busy; });
  }
}

std::vector<std::vector<ObjectId>> ShardedDynamicCService::LocalizeChanged(
    const std::vector<ObjectId>& changed) const {
  std::vector<std::vector<ObjectId>> local(shards_.size());
  std::lock_guard<std::mutex> loc_lock(locations_mutex_);
  for (ObjectId global : changed) {
    const ObjectLocation& loc = locations_.at(global);
    // Skip ids that never materialized (adds annihilated in the queue).
    if (loc.local == kInvalidObject) continue;
    local[loc.shard].push_back(loc.local);
  }
  return local;
}

std::vector<std::vector<ObjectId>>
ShardedDynamicCService::TakePendingChanged() {
  std::vector<std::vector<ObjectId>> hints(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> round_lock(shards_[s]->round_mutex);
    hints[s] = std::move(shards_[s]->pending_changed);
    shards_[s]->pending_changed.clear();
  }
  return hints;
}

std::vector<ObjectId> ShardedDynamicCService::GlobalizeHints(
    const std::vector<std::vector<ObjectId>>& local_hints) const {
  std::vector<ObjectId> global;
  for (size_t s = 0; s < shards_.size() && s < local_hints.size(); ++s) {
    if (local_hints[s].empty()) continue;
    std::lock_guard<std::mutex> round_lock(shards_[s]->round_mutex);
    for (ObjectId local : local_hints[s]) {
      global.push_back(shards_[s]->global_of_local.at(local));
    }
  }
  return global;
}

ServiceReport ShardedDynamicCService::ObserveBatchRound(
    const std::vector<ObjectId>& changed) {
  std::vector<std::vector<ObjectId>> hints;
  if (async()) {
    // Barrier: everything admitted is applied before the round, and the
    // service's own record of applied-but-unrounded objects replaces
    // the caller's list (they agree when the caller passed what the
    // preceding ingest returned).
    Drain();
    hints = TakePendingChanged();
  } else {
    hints = LocalizeChanged(changed);
  }
  if (observer_ != nullptr) {
    observer_->OnBarrier(StreamObserver::Barrier::kObserve,
                         async() ? GlobalizeHints(hints) : changed);
  }
  ServiceReport report;
  report.train_shards.resize(shards_.size());

  {
    obs::ScopedSpan barrier_span(
        tracer_, obs::kSpanObserveRound, obs::kServiceShard,
        open_epoch_.load(std::memory_order_relaxed));
    ScopedTimer wall;
    wall.Set(&report.wall_ms)
        .Record(metrics_ ? metrics_->barrier_ms : nullptr);
    pool_.ParallelFor(shards_.size(), [&](size_t s) {
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> round_lock(shard.round_mutex);
      ShardTrainStats& stats = report.train_shards[s];
      stats.shard = static_cast<uint32_t>(s);
      {
        obs::ScopedSpan span(tracer_, obs::kSpanObserveRound,
                             static_cast<uint32_t>(s));
        ScopedTimer timer;
        timer.Set(&stats.round_ms);
        if (shard.dataset.alive_count() > 0) {
          stats.report = shard.session->ObserveBatchRound(hints[s]);
          stats.participated = true;
          shard.state_version += 1;
        }
        shard.dirty = false;  // the batch result is a fresh fixpoint
      }
      stats.objects = shard.dataset.alive_count();
      stats.clusters = shard.session->engine().clustering().num_clusters();
      if (stats.participated) {
        std::lock_guard<std::mutex> queue_lock(shard.queue_mutex);
        shard.cost_ms += stats.round_ms;
      }
    });
  }

  for (const ShardTrainStats& stats : report.train_shards) {
    report.total_shard_ms += stats.round_ms;
    report.max_shard_ms = std::max(report.max_shard_ms, stats.round_ms);
    report.total_objects += stats.objects;
    report.total_clusters += stats.clusters;
    report.evolution_steps += stats.report.step_count;
  }
  FillIngestStats(&report.ingest);
  FinalizeReport(&report);
  // An observe means the caller is driving barriers (training, or a
  // long-run accuracy refresh): background rounds stay off until the
  // next explicit DynamicRound/Flush, so any number of training
  // barriers sees exactly the synchronous path's engine state and
  // derives identical models.
  serving_.store(false, std::memory_order_release);
  return report;
}

ServiceReport ShardedDynamicCService::DynamicRound(
    const std::vector<ObjectId>& changed) {
  std::vector<std::vector<ObjectId>> hints;
  if (async()) {
    Drain();
    hints = TakePendingChanged();
  } else {
    hints = LocalizeChanged(changed);
  }
  if (observer_ != nullptr) {
    observer_->OnBarrier(StreamObserver::Barrier::kDynamic,
                         async() ? GlobalizeHints(hints) : changed);
  }
  return ServeBarrier(std::move(hints), /*flush_epoch=*/0);
}

ServiceReport ShardedDynamicCService::ServeBarrier(
    std::vector<std::vector<ObjectId>> hints, uint64_t flush_epoch) {
  ServiceReport report;
  report.flush_epoch = flush_epoch;
  report.dynamic_shards.resize(shards_.size());

  // A shard sits the round out while empty, or clean — no operation
  // landed on it since its last round, so its clustering is already a
  // DynamicC fixpoint and re-running would change nothing. In async
  // mode the background workers already rounded every trained shard, so
  // only shards they had to leave dirty (untrained ones) serve here.
  std::vector<size_t> serving;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> round_lock(shards_[s]->round_mutex);
    ShardDynamicStats& stats = report.dynamic_shards[s];
    stats.shard = static_cast<uint32_t>(s);
    stats.objects = shards_[s]->dataset.alive_count();
    stats.clusters = shards_[s]->session->engine().clustering().num_clusters();
    if (shards_[s]->dirty && stats.objects > 0) {
      serving.push_back(s);
    }
  }
  {
    obs::ScopedSpan barrier_span(tracer_, obs::kSpanDynamicRound,
                                 obs::kServiceShard, flush_epoch);
    ScopedTimer wall_timer;
    wall_timer.Set(&report.wall_ms)
        .Record(metrics_ ? metrics_->barrier_ms : nullptr);
    pool_.ParallelFor(serving.size(), [&](size_t i) {
      size_t s = serving[i];
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> round_lock(shard.round_mutex);
      ShardDynamicStats& stats = report.dynamic_shards[s];
      {
        obs::ScopedSpan span(tracer_, obs::kSpanDynamicRound,
                             static_cast<uint32_t>(s), flush_epoch);
        ScopedTimer timer;
        timer.Set(&stats.round_ms);
        if (shard.session->is_trained()) {
          stats.report = shard.session->DynamicRound(hints[s]);
        } else {
          // The shard cannot serve dynamically yet — its slice of the
          // training phase produced no evolution steps, or its first
          // data arrived after training ended. Serve it with an
          // observed batch round instead (mirroring the session's
          // observe_every path): the output is the correct batch
          // clustering either way, and the round doubles as this
          // shard's training opportunity.
          DynamicCSession::TrainReport observe =
              shard.session->ObserveBatchRound(hints[s]);
          stats.report.recluster_ms = observe.batch_ms + observe.derive_ms;
          stats.report.retrain_ms = observe.fit_ms;
          stats.report.used_batch = true;
        }
        stats.participated = true;
        shard.dirty = false;
        shard.state_version += 1;
      }
      stats.objects = shard.dataset.alive_count();
      stats.clusters = shard.session->engine().clustering().num_clusters();
      std::lock_guard<std::mutex> queue_lock(shard.queue_mutex);
      shard.cost_ms += stats.round_ms;
      AccumulateRecluster(&shard.round_detail, stats.report.detail);
    });
  }

  for (const ShardDynamicStats& stats : report.dynamic_shards) {
    report.total_shard_ms += stats.round_ms;
    report.max_shard_ms = std::max(report.max_shard_ms, stats.round_ms);
    report.total_objects += stats.objects;
    report.total_clusters += stats.clusters;
    AccumulateRecluster(&report.combined, stats.report.detail);
  }
  FillIngestStats(&report.ingest);
  FinalizeReport(&report);
  // An explicit dynamic barrier is the caller's transition into the
  // serving phase: from here (if every data-holding shard is trained)
  // the background workers round continuously until the next observe.
  serving_.store(is_trained(), std::memory_order_release);
  // Automatic placement maintenance rides the barrier cadence: every K
  // dynamic barriers one rebalance pass runs, after the round so its
  // cost measurements include this round and its migrations land before
  // the next batch of traffic.
  if (options_.rebalance.every_rounds > 0 &&
      rounds_since_rebalance_.fetch_add(1) + 1 >=
          options_.rebalance.every_rounds) {
    rounds_since_rebalance_.store(0);
    RebalanceOnce();
  }
  if (read_views_ != nullptr) {
    // The barrier's state covers everything admitted up to the newest
    // sealed epoch (and, on a full drain, possibly later open-epoch
    // operations) — stamp the view with the newest sealed epoch, the
    // lower bound the staleness contract promises.
    PublishReadViewAt(flush_epoch > 0
                          ? flush_epoch
                          : open_epoch_.load(std::memory_order_relaxed) - 1);
  }
  return report;
}

ServiceReport ShardedDynamicCService::Flush() { return DynamicRound({}); }

uint64_t ShardedDynamicCService::CloseEpoch() {
  std::lock_guard<std::mutex> ingest_lock(ingest_mutex_);
  return CloseEpochLocked();
}

uint64_t ShardedDynamicCService::CloseEpochLocked() {
  // ingest_mutex_ is held: no admission races the seal, so the recorded
  // boundaries cover exactly the operations of this epoch and earlier.
  const uint64_t closed = open_epoch_.fetch_add(1);
  uint64_t pending_tail = 0;
  {
    // The seal proper: stamping watermarks and epoch marks across the
    // shards. Shipping the delta (the observer hook below) is timed
    // separately — the split is what tells an operator whether a slow
    // CloseEpoch is the service's bookkeeping or the replication sink.
    obs::ScopedSpan span(tracer_, obs::kSpanEpochSeal, obs::kServiceShard,
                         closed);
    ScopedTimer seal_timer;
    seal_timer.Record(metrics_ ? metrics_->epoch_seal_ms : nullptr);
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      const uint64_t boundary = shard.log.appended();
      if (!shard.worker_busy) {
        // No drain task is queued or running, so nothing is in flight
        // and the precise watermark is safe to read straight off the
        // log (first_pending_sequence() is appended() when nothing
        // pends).
        shard.reflected_seq = shard.log.first_pending_sequence();
      }
      if (boundary <= shard.reflected_seq) {
        shard.applied_epoch = closed;
        shard.epoch_applied.notify_all();
      } else {
        shard.epoch_marks.push_back(Shard::EpochMark{closed, boundary});
      }
      if (observer_ != nullptr || read_views_ != nullptr) {
        // Everything still queued below the seal boundary is
        // sealed-but-unapplied — the primary's replication lag at this
        // boundary, which the delta log records per epoch. Count-only
        // (ExportRange's copying sibling has no place under these
        // locks).
        pending_tail += shard.log.LogicalInRange(0, boundary);
      }
    }
  }
  if (metrics_) metrics_->epochs_sealed->Add(1);
  if (observer_ != nullptr) {
    // Swap-only: the replication session queues the sealed events here
    // and writes the delta file after CloseEpoch returns, off the
    // admission path (ReplicationSession::ShipPending owns the
    // `delta.ship` span and `epoch.delta_ship_ms` histogram).
    observer_->OnEpochSealed(closed, pending_tail);
  }
  if (read_views_ != nullptr && pending_tail == 0) {
    // Every operation of the sealed epoch is already applied, so the
    // state right now *is* epoch `closed` — publish it. With a tail
    // still queued, the epoch's view appears at the barrier that
    // applies it instead.
    PublishReadViewAt(closed);
  }
  return closed;
}

void ShardedDynamicCService::AdvanceEpochsLocked(Shard* shard) {
  shard->reflected_seq = shard->log.first_pending_sequence();
  bool advanced = false;
  while (!shard->epoch_marks.empty() &&
         shard->epoch_marks.front().boundary <= shard->reflected_seq) {
    shard->applied_epoch = shard->epoch_marks.front().epoch;
    shard->epoch_marks.pop_front();
    advanced = true;
  }
  if (advanced) shard->epoch_applied.notify_all();
}

void ShardedDynamicCService::WaitEpoch(uint64_t epoch) {
  if (epoch == 0) return;
  DYNAMICC_CHECK_LT(epoch, open_epoch_.load())
      << "WaitEpoch requires a closed epoch (CloseEpoch first)";
  // A migration moves queued operations — and with them epoch
  // obligations — from one shard's log to another's. A scan that
  // overlapped one may have checked the destination before the replayed
  // tail arrived, so the scan only counts if no migration surgery ran
  // during it (seqlock; migrations are rare, rescans cheap: already
  // applied shards pass immediately).
  for (;;) {
    const uint64_t seq_before = migration_seq_.load(std::memory_order_acquire);
    if (seq_before % 2 == 1) {
      std::this_thread::yield();
      continue;
    }
    for (const auto& shard_ptr : shards_) {
      Shard& shard = *shard_ptr;
      std::unique_lock<std::mutex> lock(shard.queue_mutex);
      shard.epoch_applied.wait(
          lock, [&shard, epoch] { return shard.applied_epoch >= epoch; });
    }
    if (migration_seq_.load(std::memory_order_acquire) == seq_before) return;
  }
}

ServiceReport ShardedDynamicCService::Flush(uint64_t epoch) {
  // 0 is not an epoch (numbering starts at 1): catching it here keeps a
  // caller who passed an uninitialized watermark from silently getting
  // a no-drain barrier that looks like a completed flush.
  DYNAMICC_CHECK_GT(epoch, 0u) << "Flush(epoch) requires a sealed epoch";
  WaitEpoch(epoch);
  // Only what the epoch's application left dirty still needs serving
  // (trained shards were rounded by their workers batch by batch; the
  // hints carry the applied-but-unrounded objects of untrained ones).
  // No Drain(): later-epoch queue contents stay queued.
  std::vector<std::vector<ObjectId>> hints = TakePendingChanged();
  if (observer_ != nullptr) {
    observer_->OnBarrier(StreamObserver::Barrier::kDynamic,
                         GlobalizeHints(hints));
  }
  return ServeBarrier(std::move(hints), epoch);
}

ServiceSnapshot ShardedDynamicCService::Snapshot() const {
  ServiceSnapshot snap;
  snap.report.dynamic_shards.resize(shards_.size());

  // Holding every round mutex pauses each shard's worker between
  // rounds: the cut observes every shard at a round boundary.
  std::vector<std::unique_lock<std::mutex>> round_locks;
  round_locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    round_locks.emplace_back(shard->round_mutex);
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardDynamicStats& stats = snap.report.dynamic_shards[s];
    stats.shard = static_cast<uint32_t>(s);
    stats.objects = shard.dataset.alive_count();
    stats.clusters = shard.session->engine().clustering().num_clusters();
    AppendShardClusters(shard, &snap.clusters);
    snap.total_objects += stats.objects;
    snap.total_clusters += stats.clusters;
    snap.report.total_objects += stats.objects;
    snap.report.total_clusters += stats.clusters;
    std::lock_guard<std::mutex> queue_lock(shard.queue_mutex);
    AccumulateRecluster(&snap.report.combined, shard.round_detail);
  }
  std::sort(snap.clusters.begin(), snap.clusters.end());

  FillIngestStats(&snap.report.ingest);
  FinalizeReport(&snap.report);
  snap.sequence =
      snap.report.ingest.accepted_ops - snap.report.ingest.pending_ops;
  return snap;
}

IngestStats ShardedDynamicCService::ingest_stats() const {
  IngestStats stats;
  FillIngestStats(&stats);
  return stats;
}

void ShardedDynamicCService::FillIngestStats(IngestStats* ingest) const {
  ingest->rejected_batches = rejected_batches_.load();
  ingest->rejected_ops = rejected_ops_.load();
  ingest->open_epoch = open_epoch_.load();
  // The fleet-wide applied epoch is the laggard's: an epoch is applied
  // once *every* shard has it.
  uint64_t applied_epoch = ingest->open_epoch - 1;
  size_t shard_index = 0;
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    if (metrics_ != nullptr) {
      metrics_->queue_depth[shard_index]->Set(
          static_cast<double>(shard.log.pending()));
    }
    shard_index += 1;
    applied_epoch = std::min(applied_epoch, shard.applied_epoch);
    ingest->accepted_ops += shard.accepted_ops;
    ingest->applied_ops += shard.applied_ops;
    ingest->coalesced_ops += shard.log.coalesced();
    ingest->pending_ops += shard.log.pending_logical();
    ingest->applied_batches += shard.applied_batches;
    ingest->worker_rounds += shard.worker_rounds;
    ingest->producer_waits += shard.producer_waits;
    ingest->queue_high_water =
        std::max(ingest->queue_high_water, shard.queue_high_water);
    ingest->worker_apply_ms += shard.worker_apply_ms;
    ingest->worker_round_ms += shard.worker_round_ms;
    ingest->batch_grows += shard.batch_grows;
    ingest->batch_shrinks += shard.batch_shrinks;
    if (shard.adaptive_batch > 0) {
      if (ingest->adaptive_batch_min == 0 ||
          shard.adaptive_batch < ingest->adaptive_batch_min) {
        ingest->adaptive_batch_min = shard.adaptive_batch;
      }
      ingest->adaptive_batch_max =
          std::max(ingest->adaptive_batch_max, shard.adaptive_batch);
    }
  }
  ingest->applied_epoch = applied_epoch;

  // The shard-local counters above stay authoritative; the registry
  // carries a verbatim mirror so exporters and reports can never
  // disagree (obs_test pins gauge == struct field).
  if (metrics_ != nullptr) {
    metrics_->accepted_ops->Set(static_cast<double>(ingest->accepted_ops));
    metrics_->rejected_batches->Set(
        static_cast<double>(ingest->rejected_batches));
    metrics_->rejected_ops->Set(static_cast<double>(ingest->rejected_ops));
    metrics_->coalesced_ops->Set(static_cast<double>(ingest->coalesced_ops));
    metrics_->pending_ops->Set(static_cast<double>(ingest->pending_ops));
    metrics_->applied_ops->Set(static_cast<double>(ingest->applied_ops));
    metrics_->open_epoch->Set(static_cast<double>(ingest->open_epoch));
    metrics_->applied_epoch->Set(static_cast<double>(ingest->applied_epoch));
    metrics_->applied_batches->Set(
        static_cast<double>(ingest->applied_batches));
    metrics_->worker_rounds->Set(static_cast<double>(ingest->worker_rounds));
    metrics_->producer_waits->Set(
        static_cast<double>(ingest->producer_waits));
    metrics_->queue_high_water->Set(
        static_cast<double>(ingest->queue_high_water));
  }
}

void ShardedDynamicCService::FinalizeReport(ServiceReport* report) const {
  std::vector<double> cost, records;
  auto fold = [&](size_t objects, double round_ms, bool participated) {
    // Every shard counts toward record skew (an empty shard is the
    // skew); only participants count toward round cost (clean shards
    // were skipped by design, not stragglers).
    records.push_back(static_cast<double>(objects));
    if (participated && round_ms > 0.0) cost.push_back(round_ms);
  };
  for (const ShardTrainStats& stats : report->train_shards) {
    fold(stats.objects, stats.round_ms, stats.participated);
  }
  for (const ShardDynamicStats& stats : report->dynamic_shards) {
    fold(stats.objects, stats.round_ms, stats.participated);
  }
  report->cost_imbalance = MaxMeanRatio(cost);
  report->record_imbalance = MaxMeanRatio(records);
  report->placement_version = placement_.version();
  report->groups_migrated = migrations_.load();
  if (metrics_ != nullptr) {
    metrics_->cost_imbalance->Set(report->cost_imbalance);
    metrics_->record_imbalance->Set(report->record_imbalance);
    metrics_->placement_version->Set(
        static_cast<double>(report->placement_version));
    metrics_->groups_migrated->Set(
        static_cast<double>(report->groups_migrated));
  }
}

void ShardedDynamicCService::AppendShardClusters(
    const Shard& shard, std::vector<std::vector<ObjectId>>* out) {
  for (const auto& members :
       shard.session->engine().clustering().CanonicalClusters()) {
    std::vector<ObjectId> global_members;
    global_members.reserve(members.size());
    for (ObjectId local : members) {
      global_members.push_back(shard.global_of_local.at(local));
    }
    std::sort(global_members.begin(), global_members.end());
    out->push_back(std::move(global_members));
  }
}

std::vector<std::vector<ObjectId>> ShardedDynamicCService::GlobalClusters()
    const {
  std::vector<std::vector<ObjectId>> clusters;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> round_lock(shard->round_mutex);
    AppendShardClusters(*shard, &clusters);
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

size_t ShardedDynamicCService::total_objects() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> round_lock(shard->round_mutex);
    total += shard->dataset.alive_count();
  }
  return total;
}

size_t ShardedDynamicCService::total_clusters() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> round_lock(shard->round_mutex);
    total += shard->session->engine().clustering().num_clusters();
  }
  return total;
}

bool ShardedDynamicCService::is_trained() const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> round_lock(shard->round_mutex);
    if (shard->dataset.alive_count() > 0 && !shard->session->is_trained()) {
      return false;
    }
  }
  return true;
}

ShardedDynamicCService::AdaptiveBiteDecision
ShardedDynamicCService::NextAdaptiveBite(size_t current, double latency_ms,
                                         size_t backlog,
                                         const AsyncOptions& options) {
  // AIMD: a slow round halves the bite (latency recovers in a few
  // rounds no matter how far it overshot), a fast round with backlog
  // still queued grows it one min_batch step (throughput converges
  // without overshooting). Bounded to [min_batch, max_batch or
  // queue_depth].
  const size_t floor_bite = std::max<size_t>(1, options.min_batch);
  size_t ceiling = options.max_batch > 0
                       ? options.max_batch
                       : std::max<size_t>(1, options.queue_depth);
  ceiling = std::max(ceiling, floor_bite);

  AdaptiveBiteDecision decision;
  decision.bite = std::min(std::max(current, floor_bite), ceiling);
  if (latency_ms > options.target_round_ms) {
    size_t shrunk = std::max(floor_bite, decision.bite / 2);
    if (shrunk < decision.bite) {
      decision.bite = shrunk;
      decision.shrank = true;
    }
  } else if (backlog > decision.bite && decision.bite < ceiling) {
    decision.bite = std::min(ceiling, decision.bite + floor_bite);
    decision.grew = true;
  }
  return decision;
}

void ShardedDynamicCService::ParkWorker(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  std::unique_lock<std::mutex> lock(shard.queue_mutex);
  shard.paused = true;
  // The worker parks at its next batch boundary (it checks `paused`
  // before every Take), so after this wait no drained-but-unapplied
  // batch exists for the shard. Producers cannot re-schedule a worker
  // meanwhile — the caller holds ingest_mutex_.
  shard.queue_drained.wait(lock, [&shard] { return !shard.worker_busy; });
}

void ShardedDynamicCService::ResumeWorker(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  bool schedule = false;
  {
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    shard.paused = false;
    if (!shard.log.empty() && !shard.worker_busy) {
      shard.worker_busy = true;
      schedule = true;
    }
  }
  if (schedule) {
    pool_.SubmitTo(shard_index,
                   [this, shard_index] { WorkerDrain(shard_index); });
  }
}

ShardedDynamicCService::MigrationReport ShardedDynamicCService::MigrateGroup(
    uint64_t group, uint32_t to_shard) {
  DYNAMICC_CHECK_LT(to_shard, num_shards());
  DYNAMICC_CHECK(router_->ContentAddressed())
      << "group migration requires a content-addressed router ("
      << router_->Name() << " scatters groups across shards)";
  Timer timer;
  MigrationReport report;
  report.group = group;
  report.to = to_shard;

  // Producers are excluded for the whole move: admission pins a
  // placement version under ingest_mutex_, so holding it means no batch
  // can straddle the swap — the only operations that raced the move are
  // the ones already sitting in the source shard's queue, and those are
  // replayed below. Ingest to *other* shards resumes the moment this
  // returns; their queues and workers are never touched.
  std::lock_guard<std::mutex> ingest_lock(ingest_mutex_);

  // Source = the shard currently owning the group. group_shard_ is
  // authoritative (admission sets it, every migration updates it);
  // first-member locations would lie for groups whose early members
  // are tombstones, which stay where they died.
  uint32_t from = to_shard;
  bool known = false;
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    auto it = group_shard_.find(group);
    if (it != group_shard_.end()) {
      from = it->second;
      known = true;
    }
  }
  report.from = known ? from : to_shard;
  if (!known || from == to_shard) {
    // Nothing to move; still pin the placement so future adds land on
    // `to_shard` deterministically.
    report.placement_version = placement_.Assign(group, to_shard);
    // No-op moves are journaled too: every Assign bumps the placement
    // version, and the follower must bump in lockstep.
    if (observer_ != nullptr) observer_->OnMigration(group, to_shard);
    report.ms = timer.ElapsedMillis();
    return report;
  }

  // Flush epoch, step 1: park both drain workers at a batch boundary.
  // The surgery below moves queued operations — and with them epoch
  // obligations — between the two shards' logs; the seqlock (odd = in
  // progress) makes concurrent WaitEpoch scans that overlapped the move
  // re-scan instead of trusting a destination they checked too early.
  migration_seq_.fetch_add(1, std::memory_order_acq_rel);
  {
    obs::ScopedSpan span(tracer_, obs::kSpanMigrationQuiesce,
                         obs::kServiceShard,
                         open_epoch_.load(std::memory_order_relaxed));
    span.set_range(group, group);
    ParkWorker(from);
    ParkWorker(to_shard);
  }

  {
    obs::ScopedSpan surgery_span(
        tracer_, obs::kSpanMigrationSurgery, obs::kServiceShard,
        open_epoch_.load(std::memory_order_relaxed));
    surgery_span.set_range(group, group);
    Shard& src = *shards_[from];
    Shard& dst = *shards_[to_shard];
    // Lock order everywhere: round_mutex (ascending) before
    // locations_mutex_.
    std::unique_lock<std::mutex> first(
        shards_[std::min(from, to_shard)]->round_mutex);
    std::unique_lock<std::mutex> second(
        shards_[std::max(from, to_shard)]->round_mutex);

    // The moved set: applied+alive members carry their state across;
    // queued members (no local id yet) just flip ownership and their
    // pending operations replay. Tombstones stay behind.
    std::vector<ObjectId> moved_globals;
    std::vector<ObjectId> moved_locals;
    std::unordered_set<ObjectId> moved_set;
    {
      std::lock_guard<std::mutex> loc_lock(locations_mutex_);
      group_shard_[group] = to_shard;
      auto it = group_members_.find(group);
      if (it != group_members_.end()) {
        for (ObjectId global : it->second) {
          ObjectLocation& loc = locations_[global];
          if (loc.shard != from) continue;
          if (loc.local == kInvalidObject) {
            loc.shard = to_shard;  // queued (or annihilated) add
            moved_set.insert(global);
            continue;
          }
          if (!src.dataset.IsAlive(loc.local)) continue;
          loc.shard = to_shard;
          moved_set.insert(global);
          moved_globals.push_back(global);
          moved_locals.push_back(loc.local);
        }
      }
    }

    if (!moved_locals.empty()) {
      // State surgery: membership first (the stats hooks need the edges
      // still in the graph), then graph, then dataset — an apply in
      // reverse. No model, trainer or threshold is touched: the group
      // arrives at a destination that keeps serving with its own
      // training, which is the whole point of moving state instead of
      // re-clustering.
      ClusteringEngine::GroupExtract extract =
          src.session->engine().ExtractGroupState(moved_locals);
      std::vector<Record> records;
      records.reserve(moved_locals.size());
      for (ObjectId local : moved_locals) {
        records.push_back(src.dataset.Get(local));
        src.graph->RemoveObject(local);
        src.dataset.Remove(local);
      }

      // Adopt: records in source-local (= admission) order keep repeated
      // migrations deterministic; edges re-derive from the destination's
      // blocker, then the carried-over memberships re-attach.
      std::unordered_map<ObjectId, ObjectId> local_map;
      local_map.reserve(moved_locals.size());
      {
        std::lock_guard<std::mutex> loc_lock(locations_mutex_);
        for (size_t i = 0; i < moved_locals.size(); ++i) {
          ObjectId fresh = dst.dataset.Add(records[i]);
          dst.graph->AddObject(fresh);
          DYNAMICC_CHECK_EQ(dst.global_of_local.size(), fresh);
          dst.global_of_local.push_back(moved_globals[i]);
          locations_[moved_globals[i]].local = fresh;
          local_map[moved_locals[i]] = fresh;
        }
      }
      std::vector<std::vector<ObjectId>> adopted = std::move(extract.clusters);
      for (auto& cluster : adopted) {
        for (ObjectId& member : cluster) member = local_map.at(member);
      }
      dst.session->engine().AdoptGroupState(adopted);
      report.objects = moved_locals.size();
      report.clusters = adopted.size();

      // Applied-but-unrounded hints follow their objects.
      if (!src.pending_changed.empty()) {
        std::vector<ObjectId> kept;
        kept.reserve(src.pending_changed.size());
        for (ObjectId local : src.pending_changed) {
          auto mapped = local_map.find(local);
          if (mapped == local_map.end()) {
            kept.push_back(local);
          } else {
            dst.pending_changed.push_back(mapped->second);
          }
        }
        src.pending_changed.swap(kept);
      }
      // A cut cluster (similarity edges crossing blocking groups inside
      // the shard) leaves the source off its fixpoint.
      if (extract.split_sources > 0) src.dirty = true;
    }

    // Flush epoch, step 2: re-home the raced tail. Everything producers
    // enqueued for this group before the swap sits in the source log;
    // extract it by target id and replay it onto the destination log in
    // arrival order — per-object composition (folds, annihilations)
    // keeps working because relative order is preserved.
    OperationLog::Extracted raced;
    uint64_t src_applied_epoch = 0;
    {
      std::lock_guard<std::mutex> queue_lock(src.queue_mutex);
      raced = src.log.ExtractIf([&moved_set](const DataOperation& op) {
        return op.target != kInvalidObject && moved_set.count(op.target) > 0;
      });
      report.source_epoch = src.log.appended();
      // Every operation still queued on the source — the raced tail
      // included — belongs to an epoch the source has *not* applied
      // yet, so this bounds the epochs the tail can carry from below.
      src_applied_epoch = src.applied_epoch;
    }
    {
      std::lock_guard<std::mutex> queue_lock(dst.queue_mutex);
      for (DataOperation& op : raced.ops) {
        dst.log.Append(std::move(op));
      }
      report.dest_epoch = dst.log.appended();
      report.replayed_ops = raced.ops.size();
      if (!raced.ops.empty()) {
        // The replayed tail was admitted in earlier — possibly already
        // sealed, possibly already *applied on this destination* —
        // epochs, but it now sits at the end of the destination log.
        // Rebuild the destination's epoch state so every sealed epoch
        // the tail could belong to (anything above the source's applied
        // watermark) waits for the full post-replay log: roll
        // applied_epoch back to cover tails from epochs the destination
        // had already reported applied, and give every such epoch a
        // boundary at the end of the replay. Conservative — a sealed
        // epoch may now also wait for a few unrelated queued operations
        // — but producers are excluded here, so the over-approximation
        // is bounded by the queue contents at the time of the move.
        // Waiters mid-scan are safe: the migration seqlock makes any
        // WaitEpoch scan that overlapped this surgery re-scan.
        const uint64_t sealed_max = open_epoch_.load() - 1;
        const uint64_t new_applied =
            std::min(dst.applied_epoch, src_applied_epoch);
        if (sealed_max > new_applied) {
          dst.applied_epoch = new_applied;
          dst.epoch_marks.clear();
          for (uint64_t epoch = new_applied + 1; epoch <= sealed_max;
               ++epoch) {
            dst.epoch_marks.push_back(
                Shard::EpochMark{epoch, dst.log.appended()});
          }
        }
      }
    }
    {
      // The extracted operations are no longer the source's obligation:
      // its watermark may jump past sealed boundaries right now (the
      // worker is parked, so nobody else will advance it — without this
      // a source left idle after the move would strand its epochs).
      std::lock_guard<std::mutex> queue_lock(src.queue_mutex);
      AdvanceEpochsLocked(&src);
    }

    if (report.objects > 0 || report.replayed_ops > 0) {
      // The adopted state is re-validated (and, on an untrained
      // destination, trained) at the next round that covers the shard.
      dst.dirty = true;
      report.moved = true;
      migrations_.fetch_add(1);
      src.state_version += 1;
      dst.state_version += 1;
    }
  }

  // Publish the new placement while producers are still excluded — the
  // first batch admitted after the move already routes to `to_shard` —
  // then let the workers loose again.
  report.placement_version = placement_.Assign(group, to_shard);
  if (observer_ != nullptr) observer_->OnMigration(group, to_shard);
  ResumeWorker(from);
  ResumeWorker(to_shard);
  migration_seq_.fetch_add(1, std::memory_order_acq_rel);
  // Not a ScopedTimer: report.ms must be read into the return value,
  // and return-value construction happens before local destructors run.
  report.ms = timer.ElapsedMillis();
  if (metrics_) {
    metrics_->migration_ms->Record(report.ms);
    metrics_->migration_ops_rehomed->Add(report.replayed_ops);
  }
  return report;
}

std::vector<Rebalancer::GroupLoad> ShardedDynamicCService::GroupLoads() const {
  DYNAMICC_CHECK(router_->ContentAddressed())
      << "per-group loads require a content-addressed router ("
      << router_->Name() << " scatters groups across shards)";
  std::vector<Rebalancer::GroupLoad> loads;
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    loads.reserve(group_alive_.size());
    for (const auto& [group, alive] : group_alive_) {
      if (alive == 0) continue;
      auto shard = group_shard_.find(group);
      if (shard == group_shard_.end()) continue;
      Rebalancer::GroupLoad load;
      load.group = group;
      load.shard = shard->second;
      load.records = alive;
      auto ops = group_ops_.find(group);
      if (ops != group_ops_.end()) load.ops = ops->second;
      loads.push_back(load);
    }
  }
  std::sort(loads.begin(), loads.end(),
            [](const Rebalancer::GroupLoad& a, const Rebalancer::GroupLoad& b) {
              if (a.records != b.records) return a.records > b.records;
              return a.group < b.group;
            });
  return loads;
}

ShardedDynamicCService::RebalanceReport
ShardedDynamicCService::RebalanceOnce() {
  RebalanceReport report;
  if (metrics_) metrics_->rebalance_passes->Add(1);
  std::vector<Rebalancer::GroupLoad> groups = GroupLoads();
  std::vector<Rebalancer::ShardLoad> shard_loads(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    shard_loads[s].shard = static_cast<uint32_t>(s);
    std::lock_guard<std::mutex> queue_lock(shards_[s]->queue_mutex);
    shard_loads[s].cost_ms = shards_[s]->cost_ms;
  }
  for (const Rebalancer::GroupLoad& group : groups) {
    shard_loads[group.shard].records += group.records;
    shard_loads[group.shard].ops += group.ops;
  }
  std::vector<double> records_per_shard(shards_.size(), 0.0);
  for (size_t s = 0; s < shards_.size(); ++s) {
    records_per_shard[s] = static_cast<double>(shard_loads[s].records);
  }
  report.record_imbalance_before = MaxMeanRatio(records_per_shard);

  Rebalancer policy(options_.rebalance.policy);
  for (const Rebalancer::Move& move : policy.PickMoves(shard_loads, groups)) {
    report.moves.push_back(MigrateGroup(move.group, move.to));
  }

  // The cost window restarts: the next pass judges the new placement on
  // its own measurements instead of pre-move history.
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> queue_lock(shard->queue_mutex);
    shard->cost_ms = 0.0;
  }

  std::fill(records_per_shard.begin(), records_per_shard.end(), 0.0);
  for (const Rebalancer::GroupLoad& group : GroupLoads()) {
    records_per_shard[group.shard] += static_cast<double>(group.records);
  }
  report.record_imbalance_after = MaxMeanRatio(records_per_shard);
  report.placement_version = placement_.version();
  return report;
}

uint32_t ShardedDynamicCService::ShardOfObject(ObjectId global_id) const {
  std::lock_guard<std::mutex> loc_lock(locations_mutex_);
  return locations_.at(global_id).shard;
}

const DynamicCSession& ShardedDynamicCService::session(uint32_t shard) const {
  return *shards_.at(shard)->session;
}

const Dataset& ShardedDynamicCService::dataset(uint32_t shard) const {
  return shards_.at(shard)->dataset;
}

void ShardedDynamicCService::PublishReadView() {
  PublishReadViewAt(open_epoch_.load(std::memory_order_relaxed) - 1);
}

std::shared_ptr<const ReadViewSlice> ShardedDynamicCService::BuildShardSlice(
    size_t shard_index, uint64_t version) const {
  const Shard& shard = *shards_[shard_index];
  auto slice = std::make_shared<ReadViewSlice>();
  slice->shard = static_cast<uint32_t>(shard_index);
  slice->version = version;
  const auto& clustering = shard.session->engine().clustering();
  const auto& stats = shard.session->engine().stats();
  slice->clusters.reserve(clustering.num_clusters());
  for (ClusterId cluster : clustering.ClusterIds()) {
    ReadClusterInfo info;
    info.shard = static_cast<uint32_t>(shard_index);
    const auto& members = clustering.Members(cluster);
    info.members.reserve(members.size());
    ObjectId rep_local = kInvalidObject;
    ObjectId rep_global = kInvalidObject;
    for (ObjectId local : members) {
      ObjectId global = shard.global_of_local.at(local);
      info.members.push_back(global);
      if (global < rep_global) {
        rep_global = global;
        rep_local = local;
      }
    }
    std::sort(info.members.begin(), info.members.end());
    info.representative = shard.dataset.Get(rep_local);
    info.intra_sum = stats.IntraSum(cluster);
    info.avg_intra = stats.AverageIntraSimilarity(cluster);
    slice->clusters.push_back(std::move(info));
  }
  std::sort(slice->clusters.begin(), slice->clusters.end(),
            [](const ReadClusterInfo& a, const ReadClusterInfo& b) {
              return a.members.front() < b.members.front();
            });
  return slice;
}

void ShardedDynamicCService::PublishReadViewAt(uint64_t epoch) {
  if (read_views_ == nullptr) return;
  // One publisher at a time; seal and barrier paths may race here, and
  // the second through simply republishes whatever moved (or no-ops).
  std::lock_guard<std::mutex> publish_lock(read_publish_mutex_);
  obs::ScopedSpan span(tracer_, obs::kSpanReadPublish, obs::kServiceShard,
                       epoch);
  ScopedTimer publish_timer;
  publish_timer.Record(metrics_ ? metrics_->read_publish_ms : nullptr);

  // Pin the predecessor so the builder can graft its untouched slices.
  ReadPin prev_pin = read_views_->Acquire();
  const ReadView* prev = prev_pin.get();
  ReadViewBuilder builder(prev, static_cast<uint32_t>(num_shards()), epoch,
                          read_sequence_ + 1);
  bool changed = false;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> round_lock(shards_[s]->round_mutex);
    uint64_t version = shards_[s]->state_version;
    if (builder.NeedsShard(static_cast<uint32_t>(s), version)) {
      builder.SetSlice(BuildShardSlice(s, version));
      changed = true;
    }
  }
  if (prev != nullptr && prev->epoch() == epoch && !changed) {
    // Nothing moved since the identical-epoch predecessor — keep it
    // (and its readers' cache warmth) instead of churning a clone.
    return;
  }
  read_sequence_ += 1;
  read_views_->Publish(builder.Finish(shards_[0]->env.measure.get()));
}

}  // namespace dynamicc
