#include "service/sharded_service.h"

#include <algorithm>
#include <thread>
#include <utility>

#include "util/logging.h"
#include "util/timer.h"

namespace dynamicc {

namespace {

size_t DefaultThreadCount(uint32_t num_shards) {
  unsigned hardware = std::thread::hardware_concurrency();
  if (hardware == 0) hardware = 1;
  return std::min<size_t>(num_shards, hardware);
}

}  // namespace

ShardedDynamicCService::ShardedDynamicCService(
    Options options, std::unique_ptr<ShardRouter> router,
    ShardEnvironmentFactory factory)
    : options_(options),
      router_(router ? std::move(router)
                     : std::make_unique<HashShardRouter>()),
      pool_(options.num_threads > 0 ? options.num_threads
                                    : DefaultThreadCount(options.num_shards)) {
  DYNAMICC_CHECK_GT(options_.num_shards, 0u);
  DYNAMICC_CHECK(factory != nullptr);
  shards_.reserve(options_.num_shards);
  for (uint32_t i = 0; i < options_.num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    shard->env = factory();
    DYNAMICC_CHECK(shard->env.measure != nullptr);
    DYNAMICC_CHECK(shard->env.blocker != nullptr);
    DYNAMICC_CHECK(shard->env.validator != nullptr);
    DYNAMICC_CHECK(shard->env.batch != nullptr);
    DYNAMICC_CHECK(shard->env.merge_model != nullptr);
    DYNAMICC_CHECK(shard->env.split_model != nullptr);
    shard->graph = std::make_unique<SimilarityGraph>(
        &shard->dataset, shard->env.measure.get(),
        std::move(shard->env.blocker), shard->env.min_similarity);
    shard->session = std::make_unique<DynamicCSession>(
        &shard->dataset, shard->graph.get(), shard->env.batch.get(),
        shard->env.validator.get(), std::move(shard->env.merge_model),
        std::move(shard->env.split_model), options_.session);
    shards_.push_back(std::move(shard));
  }
}

ShardedDynamicCService::IngestResult ShardedDynamicCService::Ingest(
    const OperationBatch& operations) {
  return IngestInternal(operations, options_.async.backpressure);
}

std::vector<ObjectId> ShardedDynamicCService::ApplyOperations(
    const OperationBatch& operations) {
  IngestResult result =
      IngestInternal(operations, BackpressurePolicy::kBlock);
  return std::move(result.changed);
}

ShardedDynamicCService::IngestResult ShardedDynamicCService::IngestInternal(
    const OperationBatch& operations, BackpressurePolicy policy) {
  // Producers serialize here: global ids come out dense in admission
  // order, and a kReject capacity check stays atomic with its enqueue.
  std::lock_guard<std::mutex> ingest_lock(ingest_mutex_);
  const bool async = options_.async.enabled;
  const size_t depth = std::max<size_t>(1, options_.async.queue_depth);

  // Pass 1 — route every operation without touching state: adds by
  // content, removes/updates to the shard that owns the target. A
  // target may be an add from this very batch (its id is not assigned
  // until pass 2), so prospective ids resolve against the batch's own
  // adds.
  std::vector<uint32_t> shard_of(operations.size());
  std::vector<size_t> slice_size(shards_.size(), 0);
  std::vector<uint32_t> batch_add_shards;
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    const size_t base = locations_.size();
    for (size_t i = 0; i < operations.size(); ++i) {
      const DataOperation& op = operations[i];
      uint32_t target;
      if (op.kind == DataOperation::Kind::kAdd) {
        target = router_->Route(op.record, num_shards());
        batch_add_shards.push_back(target);
      } else if (op.target < base) {
        target = locations_.at(op.target).shard;
      } else {
        // Intra-batch reference: the target is this batch's add number
        // (op.target - base), which pass 2 will admit under exactly
        // that id.
        target = batch_add_shards.at(op.target - base);
      }
      shard_of[i] = target;
      slice_size[target] += 1;
    }
  }

  // kReject decides before any id is assigned, so a turned-away batch
  // leaves no trace. The depth bounds *backlog*, not batch size: a
  // shard with an empty queue admits any slice (transiently exceeding
  // the depth), so an oversized batch always makes progress on retry
  // instead of being rejected forever. The check is conservative
  // otherwise: it charges the slice's full size even though coalescing
  // may shrink it on arrival.
  if (async && policy == BackpressurePolicy::kReject) {
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (slice_size[s] == 0) continue;
      std::lock_guard<std::mutex> lock(shards_[s]->queue_mutex);
      size_t pending = shards_[s]->log.pending();
      if (pending > 0 && pending + slice_size[s] > depth) {
        rejected_batches_.fetch_add(1);
        rejected_ops_.fetch_add(operations.size());
        return IngestResult{false, {}};
      }
    }
  }

  // Pass 2 — commit: assign global ids densely in admission order and
  // build the per-shard slices. Adds carry their assigned id in
  // `target` (the OperationLog coalescing handle; cleared again before
  // the slice reaches the session).
  IngestResult result;
  std::vector<OperationBatch> per_shard(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    per_shard[s].reserve(slice_size[s]);
  }
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    for (size_t i = 0; i < operations.size(); ++i) {
      DataOperation routed = operations[i];
      if (routed.kind == DataOperation::Kind::kAdd) {
        ObjectId global = static_cast<ObjectId>(locations_.size());
        locations_.push_back(ObjectLocation{shard_of[i], kInvalidObject});
        routed.target = global;
        result.changed.push_back(global);
      } else if (routed.kind == DataOperation::Kind::kUpdate) {
        result.changed.push_back(routed.target);
      }
      per_shard[shard_of[i]].push_back(std::move(routed));
    }
  }

  if (!async) {
    // Shard slices are disjoint, so they apply concurrently. Only
    // shards with work are dispatched: waking a worker for an empty
    // slice costs more than the slice.
    std::vector<size_t> busy;
    for (size_t s = 0; s < shards_.size(); ++s) {
      if (!per_shard[s].empty()) busy.push_back(s);
    }
    pool_.ParallelFor(busy.size(), [&](size_t i) {
      size_t s = busy[i];
      Shard& shard = *shards_[s];
      std::lock_guard<std::mutex> round_lock(shard.round_mutex);
      shard.dirty = true;
      ApplyBatchToShard(s, per_shard[s]);
      std::lock_guard<std::mutex> queue_lock(shard.queue_mutex);
      shard.accepted_ops += per_shard[s].size();
    });
    return result;
  }

  // Pass 3 — enqueue with backpressure and wake each shard's worker.
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (per_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    bool schedule = false;
    {
      std::unique_lock<std::mutex> lock(shard.queue_mutex);
      bool counted_wait = false;
      for (DataOperation& op : per_shard[s]) {
        // Only kBlock meters the queue op-by-op; a kReject batch was
        // admitted as a whole above and must never stall the producer
        // (its slice may transiently exceed the depth).
        while (policy == BackpressurePolicy::kBlock &&
               shard.log.pending() >= depth) {
          // A worker must be in flight before we sleep, or nobody would
          // ever make room (a slice larger than the queue depth fills
          // it before this call returns).
          if (!shard.worker_busy) {
            shard.worker_busy = true;
            pool_.SubmitTo(s, [this, s] { WorkerDrain(s); });
            continue;
          }
          if (!counted_wait) {
            shard.producer_waits += 1;
            counted_wait = true;
          }
          shard.queue_not_full.wait(lock);
        }
        shard.log.Append(std::move(op));
        shard.accepted_ops += 1;
        shard.queue_high_water =
            std::max(shard.queue_high_water, shard.log.pending());
      }
      if (!shard.log.empty() && !shard.worker_busy) {
        shard.worker_busy = true;
        schedule = true;
      }
    }
    if (schedule) pool_.SubmitTo(s, [this, s] { WorkerDrain(s); });
  }
  return result;
}

std::vector<ObjectId> ShardedDynamicCService::ApplyBatchToShard(
    size_t shard_index, const OperationBatch& batch) {
  Shard& shard = *shards_[shard_index];
  size_t base = shard.dataset.total_count();
  OperationBatch local_ops;
  local_ops.reserve(batch.size());
  std::vector<ObjectId> expected;
  size_t adds = 0;
  {
    std::lock_guard<std::mutex> loc_lock(locations_mutex_);
    for (const DataOperation& op : batch) {
      DataOperation local = op;
      if (op.kind == DataOperation::Kind::kAdd) {
        ObjectId global = op.target;
        DYNAMICC_CHECK(global != kInvalidObject)
            << "add reached a shard without an admission-assigned id";
        ObjectId local_id = static_cast<ObjectId>(base + adds++);
        locations_[global].local = local_id;
        local.target = kInvalidObject;
        expected.push_back(local_id);
        DYNAMICC_CHECK_EQ(shard.global_of_local.size(), local_id);
        shard.global_of_local.push_back(global);
      } else {
        const ObjectLocation& loc = locations_.at(op.target);
        DYNAMICC_CHECK_EQ(loc.shard, static_cast<uint32_t>(shard_index));
        DYNAMICC_CHECK(loc.local != kInvalidObject)
            << "operation targets an object that never materialized";
        local.target = loc.local;
        if (op.kind == DataOperation::Kind::kUpdate) {
          expected.push_back(loc.local);
        }
      }
      local_ops.push_back(std::move(local));
    }
  }
  std::vector<ObjectId> changed = shard.session->ApplyOperations(local_ops);
  DYNAMICC_CHECK(changed == expected)
      << "shard dataset assigned ids out of line with the service's "
         "admission-order pre-assignment";
  return changed;
}

void ShardedDynamicCService::WorkerDrain(size_t shard_index) {
  Shard& shard = *shards_[shard_index];
  // Several shards may share one pool worker; yielding after a few
  // batches round-robins them instead of letting a continuously-fed
  // shard starve its neighbours. On yield the shard stays marked busy
  // and the resubmitted task owns the remaining queue.
  constexpr int kBatchesBeforeYield = 4;
  for (int iteration = 0; iteration < kBatchesBeforeYield; ++iteration) {
    OperationLog::Drained drained;
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      if (shard.log.empty()) {
        shard.log.Take(0);  // GC entries annihilated in place
        shard.worker_busy = false;
        shard.queue_drained.notify_all();
        return;
      }
      drained = shard.log.Take(options_.async.max_batch);
      shard.queue_not_full.notify_all();
    }

    Timer timer;
    double apply_ms = 0.0;
    double round_ms = 0.0;
    bool rounded = false;
    DynamicCSession::DynamicReport round_report;
    {
      std::lock_guard<std::mutex> round_lock(shard.round_mutex);
      std::vector<ObjectId> changed =
          ApplyBatchToShard(shard_index, drained.ops);
      apply_ms = timer.ElapsedMillis();
      shard.dirty = true;
      // Rounds run in the background only once the whole service is
      // trained; until then application is deferred but rounds stay
      // with the explicit barriers, so training matches the
      // synchronous path exactly.
      if (serving_.load(std::memory_order_acquire) &&
          shard.session->is_trained()) {
        if (!shard.pending_changed.empty()) {
          changed.insert(changed.begin(), shard.pending_changed.begin(),
                         shard.pending_changed.end());
          shard.pending_changed.clear();
        }
        timer.Reset();
        round_report = shard.session->DynamicRound(changed);
        round_ms = timer.ElapsedMillis();
        shard.dirty = false;
        rounded = true;
      } else {
        shard.pending_changed.insert(shard.pending_changed.end(),
                                     changed.begin(), changed.end());
      }
    }
    {
      std::lock_guard<std::mutex> lock(shard.queue_mutex);
      shard.applied_batches += 1;
      shard.worker_apply_ms += apply_ms;
      if (rounded) {
        shard.worker_rounds += 1;
        shard.worker_round_ms += round_ms;
        AccumulateRecluster(&shard.round_detail, round_report.detail);
      }
    }
  }
  pool_.SubmitTo(shard_index, [this, shard_index] { WorkerDrain(shard_index); });
}

void ShardedDynamicCService::Drain() {
  if (!async()) return;
  for (const auto& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    std::unique_lock<std::mutex> lock(shard.queue_mutex);
    shard.queue_drained.wait(
        lock, [&shard] { return shard.log.empty() && !shard.worker_busy; });
  }
}

std::vector<std::vector<ObjectId>> ShardedDynamicCService::LocalizeChanged(
    const std::vector<ObjectId>& changed) const {
  std::vector<std::vector<ObjectId>> local(shards_.size());
  std::lock_guard<std::mutex> loc_lock(locations_mutex_);
  for (ObjectId global : changed) {
    const ObjectLocation& loc = locations_.at(global);
    // Skip ids that never materialized (adds annihilated in the queue).
    if (loc.local == kInvalidObject) continue;
    local[loc.shard].push_back(loc.local);
  }
  return local;
}

std::vector<std::vector<ObjectId>>
ShardedDynamicCService::TakePendingChanged() {
  std::vector<std::vector<ObjectId>> hints(shards_.size());
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> round_lock(shards_[s]->round_mutex);
    hints[s] = std::move(shards_[s]->pending_changed);
    shards_[s]->pending_changed.clear();
  }
  return hints;
}

ServiceReport ShardedDynamicCService::ObserveBatchRound(
    const std::vector<ObjectId>& changed) {
  std::vector<std::vector<ObjectId>> hints;
  if (async()) {
    // Barrier: everything admitted is applied before the round, and the
    // service's own record of applied-but-unrounded objects replaces
    // the caller's list (they agree when the caller passed what the
    // preceding ingest returned).
    Drain();
    hints = TakePendingChanged();
  } else {
    hints = LocalizeChanged(changed);
  }
  ServiceReport report;
  report.train_shards.resize(shards_.size());

  Timer wall;
  pool_.ParallelFor(shards_.size(), [&](size_t s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> round_lock(shard.round_mutex);
    ShardTrainStats& stats = report.train_shards[s];
    stats.shard = static_cast<uint32_t>(s);
    Timer timer;
    if (shard.dataset.alive_count() > 0) {
      stats.report = shard.session->ObserveBatchRound(hints[s]);
      stats.participated = true;
    }
    shard.dirty = false;  // the batch result is a fresh fixpoint
    stats.round_ms = timer.ElapsedMillis();
    stats.objects = shard.dataset.alive_count();
    stats.clusters = shard.session->engine().clustering().num_clusters();
  });
  report.wall_ms = wall.ElapsedMillis();

  for (const ShardTrainStats& stats : report.train_shards) {
    report.total_shard_ms += stats.round_ms;
    report.max_shard_ms = std::max(report.max_shard_ms, stats.round_ms);
    report.total_objects += stats.objects;
    report.total_clusters += stats.clusters;
    report.evolution_steps += stats.report.step_count;
  }
  FillIngestStats(&report.ingest);
  // An observe means the caller is driving barriers (training, or a
  // long-run accuracy refresh): background rounds stay off until the
  // next explicit DynamicRound/Flush, so any number of training
  // barriers sees exactly the synchronous path's engine state and
  // derives identical models.
  serving_.store(false, std::memory_order_release);
  return report;
}

ServiceReport ShardedDynamicCService::DynamicRound(
    const std::vector<ObjectId>& changed) {
  std::vector<std::vector<ObjectId>> hints;
  if (async()) {
    Drain();
    hints = TakePendingChanged();
  } else {
    hints = LocalizeChanged(changed);
  }
  ServiceReport report;
  report.dynamic_shards.resize(shards_.size());

  Timer wall;
  // A shard sits the round out while empty, or clean — no operation
  // landed on it since its last round, so its clustering is already a
  // DynamicC fixpoint and re-running would change nothing. In async
  // mode the background workers already rounded every trained shard, so
  // only shards they had to leave dirty (untrained ones) serve here.
  std::vector<size_t> serving;
  for (size_t s = 0; s < shards_.size(); ++s) {
    std::lock_guard<std::mutex> round_lock(shards_[s]->round_mutex);
    ShardDynamicStats& stats = report.dynamic_shards[s];
    stats.shard = static_cast<uint32_t>(s);
    stats.objects = shards_[s]->dataset.alive_count();
    stats.clusters = shards_[s]->session->engine().clustering().num_clusters();
    if (shards_[s]->dirty && stats.objects > 0) {
      serving.push_back(s);
    }
  }
  pool_.ParallelFor(serving.size(), [&](size_t i) {
    size_t s = serving[i];
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> round_lock(shard.round_mutex);
    ShardDynamicStats& stats = report.dynamic_shards[s];
    Timer timer;
    if (shard.session->is_trained()) {
      stats.report = shard.session->DynamicRound(hints[s]);
    } else {
      // The shard cannot serve dynamically yet — its slice of the
      // training phase produced no evolution steps, or its first data
      // arrived after training ended. Serve it with an observed batch
      // round instead (mirroring the session's observe_every path):
      // the output is the correct batch clustering either way, and the
      // round doubles as this shard's training opportunity.
      DynamicCSession::TrainReport observe =
          shard.session->ObserveBatchRound(hints[s]);
      stats.report.recluster_ms = observe.batch_ms + observe.derive_ms;
      stats.report.retrain_ms = observe.fit_ms;
      stats.report.used_batch = true;
    }
    stats.participated = true;
    shard.dirty = false;
    stats.round_ms = timer.ElapsedMillis();
    stats.objects = shard.dataset.alive_count();
    stats.clusters = shard.session->engine().clustering().num_clusters();
    std::lock_guard<std::mutex> queue_lock(shard.queue_mutex);
    AccumulateRecluster(&shard.round_detail, stats.report.detail);
  });
  report.wall_ms = wall.ElapsedMillis();

  for (const ShardDynamicStats& stats : report.dynamic_shards) {
    report.total_shard_ms += stats.round_ms;
    report.max_shard_ms = std::max(report.max_shard_ms, stats.round_ms);
    report.total_objects += stats.objects;
    report.total_clusters += stats.clusters;
    AccumulateRecluster(&report.combined, stats.report.detail);
  }
  FillIngestStats(&report.ingest);
  // An explicit dynamic barrier is the caller's transition into the
  // serving phase: from here (if every data-holding shard is trained)
  // the background workers round continuously until the next observe.
  serving_.store(is_trained(), std::memory_order_release);
  return report;
}

ServiceReport ShardedDynamicCService::Flush() { return DynamicRound({}); }

ServiceSnapshot ShardedDynamicCService::Snapshot() const {
  ServiceSnapshot snap;
  snap.report.dynamic_shards.resize(shards_.size());

  // Holding every round mutex pauses each shard's worker between
  // rounds: the cut observes every shard at a round boundary.
  std::vector<std::unique_lock<std::mutex>> round_locks;
  round_locks.reserve(shards_.size());
  for (const auto& shard : shards_) {
    round_locks.emplace_back(shard->round_mutex);
  }

  for (size_t s = 0; s < shards_.size(); ++s) {
    const Shard& shard = *shards_[s];
    ShardDynamicStats& stats = snap.report.dynamic_shards[s];
    stats.shard = static_cast<uint32_t>(s);
    stats.objects = shard.dataset.alive_count();
    stats.clusters = shard.session->engine().clustering().num_clusters();
    AppendShardClusters(shard, &snap.clusters);
    snap.total_objects += stats.objects;
    snap.total_clusters += stats.clusters;
    snap.report.total_objects += stats.objects;
    snap.report.total_clusters += stats.clusters;
    std::lock_guard<std::mutex> queue_lock(shard.queue_mutex);
    AccumulateRecluster(&snap.report.combined, shard.round_detail);
  }
  std::sort(snap.clusters.begin(), snap.clusters.end());

  FillIngestStats(&snap.report.ingest);
  snap.sequence =
      snap.report.ingest.accepted_ops - snap.report.ingest.pending_ops;
  return snap;
}

IngestStats ShardedDynamicCService::ingest_stats() const {
  IngestStats stats;
  FillIngestStats(&stats);
  return stats;
}

void ShardedDynamicCService::FillIngestStats(IngestStats* ingest) const {
  ingest->rejected_batches = rejected_batches_.load();
  ingest->rejected_ops = rejected_ops_.load();
  for (const auto& shard_ptr : shards_) {
    const Shard& shard = *shard_ptr;
    std::lock_guard<std::mutex> lock(shard.queue_mutex);
    ingest->accepted_ops += shard.accepted_ops;
    ingest->coalesced_ops += shard.log.coalesced();
    ingest->pending_ops += shard.log.pending_logical();
    ingest->applied_batches += shard.applied_batches;
    ingest->worker_rounds += shard.worker_rounds;
    ingest->producer_waits += shard.producer_waits;
    ingest->queue_high_water =
        std::max(ingest->queue_high_water, shard.queue_high_water);
    ingest->worker_apply_ms += shard.worker_apply_ms;
    ingest->worker_round_ms += shard.worker_round_ms;
  }
}

void ShardedDynamicCService::AppendShardClusters(
    const Shard& shard, std::vector<std::vector<ObjectId>>* out) {
  for (const auto& members :
       shard.session->engine().clustering().CanonicalClusters()) {
    std::vector<ObjectId> global_members;
    global_members.reserve(members.size());
    for (ObjectId local : members) {
      global_members.push_back(shard.global_of_local.at(local));
    }
    std::sort(global_members.begin(), global_members.end());
    out->push_back(std::move(global_members));
  }
}

std::vector<std::vector<ObjectId>> ShardedDynamicCService::GlobalClusters()
    const {
  std::vector<std::vector<ObjectId>> clusters;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> round_lock(shard->round_mutex);
    AppendShardClusters(*shard, &clusters);
  }
  std::sort(clusters.begin(), clusters.end());
  return clusters;
}

size_t ShardedDynamicCService::total_objects() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> round_lock(shard->round_mutex);
    total += shard->dataset.alive_count();
  }
  return total;
}

size_t ShardedDynamicCService::total_clusters() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> round_lock(shard->round_mutex);
    total += shard->session->engine().clustering().num_clusters();
  }
  return total;
}

bool ShardedDynamicCService::is_trained() const {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> round_lock(shard->round_mutex);
    if (shard->dataset.alive_count() > 0 && !shard->session->is_trained()) {
      return false;
    }
  }
  return true;
}

uint32_t ShardedDynamicCService::ShardOfObject(ObjectId global_id) const {
  std::lock_guard<std::mutex> loc_lock(locations_mutex_);
  return locations_.at(global_id).shard;
}

const DynamicCSession& ShardedDynamicCService::session(uint32_t shard) const {
  return *shards_.at(shard)->session;
}

const Dataset& ShardedDynamicCService::dataset(uint32_t shard) const {
  return shards_.at(shard)->dataset;
}

}  // namespace dynamicc
