#ifndef DYNAMICC_SERVICE_READ_VIEW_H_
#define DYNAMICC_SERVICE_READ_VIEW_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/feature_index.h"
#include "data/record.h"
#include "data/similarity.h"
#include "data/types.h"

namespace dynamicc {

namespace obs {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace obs

/// One cluster as a reader sees it: members in global ids (ascending),
/// the shard serving it, and the similarity aggregates the engine
/// maintained for it at the view's epoch. `representative` is the
/// record of the smallest-id member — the deterministic probe target
/// k-nearest-cluster queries score against.
struct ReadClusterInfo {
  std::vector<ObjectId> members;
  uint32_t shard = 0;
  /// Σ sim over intra pairs and its size-normalized average (1.0 for
  /// singletons), straight from the engine's ClusterStatsTracker.
  double intra_sum = 0.0;
  double avg_intra = 0.0;
  Record representative;
};

/// The per-shard half of a view: every cluster the shard served at the
/// view's epoch. Slices are immutable and shared between consecutive
/// views — a shard that saw no operation and ran no round between two
/// publishes contributes the same slice object to both, which is what
/// makes view building incremental instead of a re-materialization.
struct ReadViewSlice {
  uint32_t shard = 0;
  /// The shard-state version this slice was cut at (the publisher's
  /// reuse check).
  uint64_t version = 0;
  std::vector<ReadClusterInfo> clusters;
};

/// Partition-wide aggregates of one view.
struct ReadViewStats {
  size_t objects = 0;
  size_t clusters = 0;
  double total_intra_sum = 0.0;
};

/// An immutable, epoch-pinned snapshot of the global clustering — what
/// one query sees, in its entirety. Built by the service when an epoch's
/// state is fully applied and rounded, published behind an RCU-style
/// atomic pointer (ReadViewRegistry), and never mutated afterwards:
/// readers dereference freely without locks for as long as they hold a
/// pin. The canonical-form contract: CanonicalClusters() of the view at
/// epoch E is byte-equal to GlobalClusters() of the service flushed at E
/// (read_path_test pins it, on primaries and followers alike).
class ReadView {
 public:
  ReadView() = default;
  ReadView(const ReadView&) = delete;
  ReadView& operator=(const ReadView&) = delete;

  /// The sealed epoch this view reflects (0 = the pre-first-seal state).
  uint64_t epoch() const { return epoch_; }

  /// Monotone publish sequence (distinct views at one epoch — e.g. a
  /// barrier that re-rounded without a new seal — stay distinguishable).
  uint64_t sequence() const { return sequence_; }

  size_t num_objects() const { return stats_.objects; }
  size_t num_clusters() const { return clusters_.size(); }
  const ReadViewStats& stats() const { return stats_; }

  /// The cluster holding `global_id`, or nullptr when the id is unknown,
  /// dead, or was still queued (unapplied) at the view's epoch.
  const ReadClusterInfo* ClusterOf(ObjectId global_id) const;

  /// Clusters in canonical global order (members ascending, clusters
  /// sorted — the exact form GlobalClusters() reports).
  const ReadClusterInfo& cluster(size_t index) const {
    return *clusters_[index];
  }

  /// Materialized canonical partition (copies; the comparator used by
  /// the byte-consistency tests).
  std::vector<std::vector<ObjectId>> CanonicalClusters() const;

  /// The clusters shard `shard` served at this epoch — the partition
  /// slice a scale-out reader fans over. Returns an empty slice for an
  /// out-of-range shard.
  const ReadViewSlice& Slice(uint32_t shard) const;
  uint32_t num_shards() const { return static_cast<uint32_t>(slices_.size()); }

  /// One k-nearest-clusters hit.
  struct Neighbor {
    const ReadClusterInfo* cluster = nullptr;
    double similarity = 0.0;
  };

  /// The k clusters whose representatives score highest against `probe`
  /// under the service's similarity measure, best first (ties broken by
  /// canonical cluster order, so results are deterministic). Scored in
  /// one batched threshold-aware kernel call over the view's
  /// representative feature table — the PR-7 fast path, not a scalar
  /// loop. Safe to call from any number of threads concurrently.
  std::vector<Neighbor> KNearestClusters(const Record& probe,
                                         size_t k) const;

 private:
  friend class ReadViewBuilder;

  /// Looked up by ClusterOf: which slice owns the id and which cluster
  /// within it. kInvalidObject-sized ids and dead objects map to
  /// kNoCluster.
  struct Entry {
    uint32_t shard = kNoShard;
    uint32_t index = 0;
  };
  static constexpr uint32_t kNoShard = 0xffffffffu;

  uint64_t epoch_ = 0;
  uint64_t sequence_ = 0;
  ReadViewStats stats_;
  std::vector<std::shared_ptr<const ReadViewSlice>> slices_;
  /// Canonical order: pointers into the slices, sorted by first member.
  std::vector<const ReadClusterInfo*> clusters_;
  /// global id -> owning slice/cluster; copied from the previous view
  /// and patched only for rebuilt slices.
  std::vector<Entry> cluster_of_;

  /// k-NN support: representative features per canonical cluster, built
  /// against the view's own intern table (queries intern nothing — see
  /// FeatureIndex::BuildQuery — so concurrent reads never mutate it).
  const SimilarityMeasure* measure_ = nullptr;
  std::unique_ptr<FeatureIndex> features_;
  std::vector<SimCandidate> candidates_;
};

/// A pinned view: dereference while alive; release by destruction. The
/// pin is what keeps the view out of the registry's reclamation — drop
/// it promptly (a query's lifetime, not a session's).
class ReadPin {
 public:
  ReadPin() = default;
  ReadPin(ReadPin&& other) noexcept;
  ReadPin& operator=(ReadPin&& other) noexcept;
  ReadPin(const ReadPin&) = delete;
  ReadPin& operator=(const ReadPin&) = delete;
  ~ReadPin();

  const ReadView* get() const { return view_; }
  const ReadView& operator*() const { return *view_; }
  const ReadView* operator->() const { return view_; }
  explicit operator bool() const { return view_ != nullptr; }

 private:
  friend class ReadViewRegistry;
  class ReadViewRegistry* registry_ = nullptr;
  const ReadView* view_ = nullptr;
  /// Hazard slot/entry the pin occupies, or -1 for the mutex-guarded
  /// fallback path.
  int slot_ = -1;
  int entry_ = -1;
};

/// RCU-style publication point for ReadViews: writers publish a new
/// immutable view with one pointer swap; readers pin the current view
/// with one acquire-load plus a hazard-slot store — no locks, no shared
/// cache-line contention between readers on different slots. Retired
/// views are reclaimed deferred, epoch-stamped: a view is freed only
/// once no hazard slot references it and it is no longer current, and
/// the registry's gauges expose how many views are live vs reclaimed.
///
/// Threading: Acquire() is wait-free for up to kMaxSlots concurrent
/// reader threads (each thread claims one slot on first use and keeps
/// it); past that, readers fall back to a mutex-guarded pin that is
/// still correct, just not lock-free. Publish() may be called from one
/// thread at a time (the service's barrier/seal path already serializes
/// it); it runs reclamation inline, so publishing is where retired
/// views die.
class ReadViewRegistry {
 public:
  /// `metrics` may be null (unmetered). Metric names are catalogued in
  /// docs/metrics.md under `read.*`.
  explicit ReadViewRegistry(obs::MetricsRegistry* metrics = nullptr);
  ~ReadViewRegistry();

  ReadViewRegistry(const ReadViewRegistry&) = delete;
  ReadViewRegistry& operator=(const ReadViewRegistry&) = delete;

  /// Pins the current view (null pin when nothing is published yet).
  ReadPin Acquire();

  /// The current view's epoch without pinning (staleness checks).
  uint64_t current_epoch() const {
    return current_epoch_.load(std::memory_order_acquire);
  }

  /// True once any view is published.
  bool has_view() const {
    return current_.load(std::memory_order_acquire) != nullptr;
  }

  /// Publishes `view` (takes ownership), retires the predecessor, and
  /// reclaims every retired view no reader still pins.
  void Publish(std::unique_ptr<const ReadView> view);

  /// Runs one reclamation pass without publishing (tests, shutdown).
  /// Returns the number of views freed.
  size_t Reclaim();

  /// Diagnostics: retired-but-unreclaimed views, and pins currently
  /// held (a scan — not for hot paths).
  size_t retired_count() const;
  size_t live_pins() const;
  uint64_t views_published() const {
    return published_.load(std::memory_order_relaxed);
  }
  uint64_t views_reclaimed() const {
    return reclaimed_.load(std::memory_order_relaxed);
  }

  /// Hazard capacity: concurrent reader threads on the lock-free path,
  /// and simultaneous pins per thread before the fallback engages.
  static constexpr int kMaxSlots = 64;
  static constexpr int kPinsPerSlot = 4;

 private:
  friend class ReadPin;

  struct Slot {
    /// Owning thread (claimed once, kept until process exit). An id is
    /// never reused while the thread lives, and a stale claim from a
    /// dead thread only wastes the slot, never corrupts it.
    std::atomic<std::thread::id> owner{};
    std::atomic<const ReadView*> hazard[kPinsPerSlot];
  };

  struct Retired {
    const ReadView* view = nullptr;
    uint64_t epoch = 0;
  };

  /// The calling thread's slot index, claiming one on first use; -1
  /// when the table is full (fallback path).
  int LocalSlotIndex();

  void Release(ReadPin* pin);
  size_t ReclaimLocked();

  std::atomic<const ReadView*> current_{nullptr};
  std::atomic<uint64_t> current_epoch_{0};
  Slot slots_[kMaxSlots];

  /// Publisher-side state (publish + reclaim + fallback pins).
  mutable std::mutex retire_mutex_;
  std::vector<Retired> retired_;
  /// Views pinned through the fallback path (slot table exhausted):
  /// view -> outstanding pin count.
  std::vector<std::pair<const ReadView*, uint64_t>> fallback_pins_;

  std::atomic<uint64_t> published_{0};
  std::atomic<uint64_t> reclaimed_{0};

  obs::Counter* published_metric_ = nullptr;
  obs::Counter* reclaimed_metric_ = nullptr;
  obs::Gauge* view_epoch_metric_ = nullptr;
  obs::Gauge* views_retired_metric_ = nullptr;
};

/// Assembles the next ReadView incrementally from the previous one:
/// the publisher asks NeedsShard() per shard, rebuilds only the slices
/// whose state version moved (SetSlice), and Finish() grafts the
/// untouched slices from `prev` by shared_ptr — so a seal that touched
/// one shard republished the other N-1 slices for free and only patches
/// the id map for the rebuilt shard's members.
class ReadViewBuilder {
 public:
  /// `prev` may be null (first publish) but must otherwise cover the
  /// same shard count. The builder borrows `prev` for the duration —
  /// the caller must hold a pin (or otherwise keep it alive) until
  /// Finish() returns.
  ReadViewBuilder(const ReadView* prev, uint32_t num_shards, uint64_t epoch,
                  uint64_t sequence);

  /// True when the shard's slice must be rebuilt: no previous view, or
  /// the shard's state version moved since `prev` was cut.
  bool NeedsShard(uint32_t shard, uint64_t version) const;

  /// Installs a freshly built slice (clusters sorted by first member,
  /// members ascending — the canonical shard form).
  void SetSlice(std::shared_ptr<const ReadViewSlice> slice);

  /// Assembles the view. `measure` (may be null → k-NN disabled) must
  /// outlive the returned view; it is the service's similarity measure,
  /// whose batch kernel scores k-nearest-cluster queries.
  std::unique_ptr<const ReadView> Finish(const SimilarityMeasure* measure);

 private:
  const ReadView* prev_;
  std::unique_ptr<ReadView> view_;
  std::vector<char> fresh_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_READ_VIEW_H_
