#include "service/rebalancer.h"

#include <algorithm>
#include <limits>

namespace dynamicc {

std::vector<Rebalancer::Move> Rebalancer::PickMoves(
    const std::vector<ShardLoad>& shards,
    const std::vector<GroupLoad>& groups) const {
  std::vector<Move> moves;
  if (shards.size() < 2) return moves;

  // Mixed units are fine within one invocation only if they are
  // consistent: use measured cost when *any* shard has it, records
  // otherwise. A shard without cost but with records (loaded while its
  // neighbours were rounding) still contributes its records scaled by
  // the overall cost-per-record so the comparison stays meaningful.
  double total_cost = 0.0;
  size_t total_records = 0;
  for (const ShardLoad& shard : shards) {
    total_cost += shard.cost_ms;
    total_records += shard.records;
  }
  const bool use_ops = options_.metric == LoadMetric::kOps;
  const bool use_cost = !use_ops &&
                        options_.metric == LoadMetric::kAuto &&
                        total_cost > 0.0;
  const double cost_per_record =
      use_cost && total_records > 0
          ? total_cost / static_cast<double>(total_records)
          : 1.0;

  std::vector<double> load(shards.size(), 0.0);
  for (size_t s = 0; s < shards.size(); ++s) {
    if (use_ops) {
      load[s] = static_cast<double>(shards[s].ops);
    } else if (use_cost) {
      load[s] = shards[s].cost_ms > 0.0
                    ? shards[s].cost_ms
                    : cost_per_record * static_cast<double>(shards[s].records);
    } else {
      load[s] = static_cast<double>(shards[s].records);
    }
  }

  // A group's contribution to its shard's load, in the same unit as
  // `load`: its own op count under kOps, its record-proportional share
  // of the shard's measured cost under kAuto, or — when the shard never
  // measured one — its records scaled by the fleet-wide cost-per-record
  // (records alone would compare record counts against milliseconds and
  // wreck the relief checks below).
  auto group_weight = [&](const GroupLoad& group) {
    if (use_ops) return static_cast<double>(group.ops);
    if (!use_cost) return static_cast<double>(group.records);
    const ShardLoad& shard = shards[group.shard];
    if (shard.cost_ms > 0.0 && shard.records > 0) {
      return shard.cost_ms * static_cast<double>(group.records) /
             static_cast<double>(shard.records);
    }
    return cost_per_record * static_cast<double>(group.records);
  };

  // Candidate groups per shard, heaviest first *in the active metric*
  // (ties on group hash so the plan is deterministic).
  auto heavier = [use_ops](const GroupLoad& a, const GroupLoad& b) {
    if (use_ops && a.ops != b.ops) return a.ops > b.ops;
    if (a.records != b.records) return a.records > b.records;
    return a.group < b.group;
  };
  std::vector<std::vector<GroupLoad>> per_shard(shards.size());
  for (const GroupLoad& group : groups) {
    if (group.shard < shards.size() &&
        group.records >= options_.min_group_records) {
      per_shard[group.shard].push_back(group);
    }
  }
  for (auto& candidates : per_shard) {
    std::sort(candidates.begin(), candidates.end(), heavier);
  }

  double mean = 0.0;
  for (double l : load) mean += l;
  mean /= static_cast<double>(load.size());

  while (moves.size() < options_.max_moves) {
    size_t straggler = 0, coolest = 0;
    for (size_t s = 1; s < load.size(); ++s) {
      if (load[s] > load[straggler]) straggler = s;
      if (load[s] < load[coolest]) coolest = s;
    }
    if (mean <= 0.0 || load[straggler] <= options_.hysteresis * mean) break;

    // Heaviest group on the straggler whose move strictly relieves it:
    // the destination must stay below the straggler's pre-move load,
    // otherwise the move just renames the straggler.
    bool moved = false;
    auto& candidates = per_shard[straggler];
    for (size_t i = 0; i < candidates.size(); ++i) {
      double weight = group_weight(candidates[i]);
      if (weight <= 0.0) continue;
      if (load[coolest] + weight >= load[straggler]) continue;
      Move move;
      move.group = candidates[i].group;
      move.from = static_cast<uint32_t>(straggler);
      move.to = static_cast<uint32_t>(coolest);
      move.expected_gain = weight;
      moves.push_back(move);
      load[straggler] -= weight;
      load[coolest] += weight;
      GroupLoad relocated = candidates[i];
      relocated.shard = move.to;
      candidates.erase(candidates.begin() + static_cast<long>(i));
      // Keep the destination's candidate list ordered for later rounds.
      auto& dest = per_shard[coolest];
      dest.insert(std::upper_bound(dest.begin(), dest.end(), relocated,
                                   heavier),
                  relocated);
      moved = true;
      break;
    }
    if (!moved) break;
  }
  return moves;
}

}  // namespace dynamicc
