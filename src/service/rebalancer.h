#ifndef DYNAMICC_SERVICE_REBALANCER_H_
#define DYNAMICC_SERVICE_REBALANCER_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace dynamicc {

/// Load-aware placement policy: given per-shard cost and per-group size,
/// picks blocking-group moves that relieve the straggler shard. Pure
/// decision logic — it never touches the service; ShardedDynamicCService
/// feeds it measurements (ServiceReport-derived round cost plus alive
/// record counts) and executes the returned moves via MigrateGroup.
///
/// The policy is greedy max-straggler-relief: while the most loaded
/// shard exceeds the mean by the hysteresis factor, move its heaviest
/// movable group to the least loaded shard, provided the move strictly
/// relieves the straggler (the destination stays below the straggler's
/// pre-move load). Hysteresis keeps the placement from oscillating:
/// mild imbalance — inevitable with group-granular placement — is
/// tolerated, only a real straggler triggers surgery.
class Rebalancer {
 public:
  /// What "load" means to the policy. kAuto prefers measured round cost
  /// when any shard has it (records otherwise) — the most faithful
  /// signal, but short measurement windows are noisy and can re-trigger
  /// moves on a placement that is already fine. kRecords always uses
  /// alive record counts: less faithful when per-record cost varies,
  /// but stable — a balanced placement measures balanced forever.
  /// kOps uses cumulative *applied-operation* counts (IngestStats'
  /// applied_ops broken down per group): a hot group that churns through
  /// updates re-clusters its shard far more often than its record count
  /// suggests, and the op counter sees that where record counts cannot —
  /// the first step of the cost model that prices activity, not size.
  enum class LoadMetric { kAuto, kRecords, kOps };

  struct Options {
    /// Act only when max shard load > hysteresis * mean shard load.
    double hysteresis = 1.2;
    /// Most moves per PickMoves invocation (one migration each).
    size_t max_moves = 4;
    /// Groups smaller than this never move (surgery has fixed overhead).
    size_t min_group_records = 2;
    LoadMetric metric = LoadMetric::kAuto;
  };

  struct ShardLoad {
    uint32_t shard = 0;
    /// Measured round cost since the last rebalance (worker + barrier
    /// rounds). Zero for every shard before any round ran; the policy
    /// then falls back to record counts.
    double cost_ms = 0.0;
    /// Alive records on the shard.
    size_t records = 0;
    /// Operations applied to the shard's engine since construction
    /// (kOps metric input; groups carry the per-group breakdown).
    uint64_t ops = 0;
  };

  struct GroupLoad {
    uint64_t group = 0;
    uint32_t shard = 0;
    /// Alive records in the group.
    size_t records = 0;
    /// Operations applied under the group (adds + updates + removes),
    /// cumulative — the activity signal behind LoadMetric::kOps.
    uint64_t ops = 0;
  };

  struct Move {
    uint64_t group = 0;
    uint32_t from = 0;
    uint32_t to = 0;
    /// Load expected to leave the straggler (same unit as the shard
    /// loads the decision was made on).
    double expected_gain = 0.0;
  };

  explicit Rebalancer(Options options) : options_(options) {}

  /// Deterministic in its inputs: ties break on shard index and group
  /// hash, so identical measurements always produce identical plans.
  std::vector<Move> PickMoves(const std::vector<ShardLoad>& shards,
                              const std::vector<GroupLoad>& groups) const;

  const Options& options() const { return options_; }

 private:
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_SERVICE_REBALANCER_H_
