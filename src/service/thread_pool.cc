#include "service/thread_pool.h"

#include <algorithm>
#include <utility>

namespace dynamicc {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

std::future<void> ThreadPool::Submit(std::function<void()> task) {
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    queue_.push(std::move(packaged));
  }
  wake_.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  // Fork-join: workers take indices 1..count-1 while the caller runs
  // index 0 itself. The caller would otherwise just block, and for the
  // common small counts (one or two busy shards) this removes all or
  // half of the worker wake-up latency.
  std::vector<std::future<void>> futures;
  futures.reserve(count - 1);
  for (size_t i = 1; i < count; ++i) {
    futures.push_back(Submit([&fn, i] { fn(i); }));
  }
  std::exception_ptr inline_error;
  try {
    fn(0);
  } catch (...) {
    inline_error = std::current_exception();
  }
  // Wait on all before rethrowing so no task still references `fn`.
  for (auto& future : futures) future.wait();
  if (inline_error) std::rethrow_exception(inline_error);
  for (auto& future : futures) future.get();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_ with a drained queue
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace dynamicc
