#include "service/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace dynamicc {

ThreadPool::ThreadPool(size_t num_threads) {
  size_t count = std::max<size_t>(1, num_threads);
  workers_.reserve(count);
  threads_.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    workers_.push_back(std::make_unique<Worker>());
  }
  for (size_t i = 0; i < count; ++i) {
    threads_.emplace_back([this, i] { WorkerLoop(i); });
  }
}

ThreadPool::~ThreadPool() {
  stopping_.store(true);
  for (auto& worker : workers_) {
    std::lock_guard<std::mutex> lock(worker->mutex);
    worker->wake.notify_all();
  }
  for (std::thread& thread : threads_) thread.join();
}

std::future<void> ThreadPool::SubmitTo(size_t worker,
                                       std::function<void()> task) {
  Worker& target = *workers_[worker % workers_.size()];
  std::packaged_task<void()> packaged(std::move(task));
  std::future<void> future = packaged.get_future();
  {
    std::lock_guard<std::mutex> lock(target.mutex);
    target.queue.push_back(std::move(packaged));
  }
  target.wake.notify_one();
  return future;
}

void ThreadPool::ParallelFor(size_t count,
                             const std::function<void(size_t)>& fn) {
  if (count == 0) return;
  // Shared-counter fork-join: the caller and the drafted workers each
  // claim the next unclaimed index until the range is exhausted. Every
  // index runs; the first exception is remembered and rethrown once the
  // whole range finished (matching a shared-queue pool's semantics).
  struct ForkState {
    std::atomic<size_t> next{0};
    std::mutex mutex;
    std::exception_ptr error;
  };
  auto state = std::make_shared<ForkState>();
  auto drive = [state, &fn, count] {
    for (;;) {
      size_t index = state->next.fetch_add(1);
      if (index >= count) return;
      try {
        fn(index);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mutex);
        if (!state->error) state->error = std::current_exception();
      }
    }
  };
  // The caller covers one lane, so draft at most count - 1 workers.
  size_t drafted = std::min(threads_.size(), count - 1);
  std::vector<std::future<void>> futures;
  futures.reserve(drafted);
  for (size_t w = 0; w < drafted; ++w) {
    futures.push_back(SubmitTo(w, drive));
  }
  drive();
  for (auto& future : futures) future.wait();
  if (state->error) std::rethrow_exception(state->error);
}

void ThreadPool::WorkerLoop(size_t index) {
  Worker& self = *workers_[index];
  for (;;) {
    std::packaged_task<void()> task;
    {
      std::unique_lock<std::mutex> lock(self.mutex);
      self.wake.wait(lock, [this, &self] {
        return stopping_.load() || !self.queue.empty();
      });
      if (self.queue.empty()) return;  // stopping with a drained queue
      task = std::move(self.queue.front());
      self.queue.pop_front();
    }
    task();  // exceptions land in the task's future
  }
}

}  // namespace dynamicc
