#ifndef DYNAMICC_HARNESS_EXPERIMENT_H_
#define DYNAMICC_HARNESS_EXPERIMENT_H_

#include <memory>
#include <string>
#include <vector>

#include "batch/batch_algorithm.h"
#include "batch/dbscan.h"
#include "cluster/engine.h"
#include "core/dynamicc.h"
#include "core/session.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "data/operations.h"
#include "data/similarity_graph.h"
#include "eval/report.h"
#include "objective/objective.h"
#include "workload/profile.h"
#include "workload/schedule.h"

namespace dynamicc {

/// Which dataset simulator drives the experiment.
enum class WorkloadKind { kCora, kMusic, kSynthetic, kAccess, kRoad };

/// Which clustering problem is solved (§7.1's three tasks + correlation,
/// which the paper uses for exposition).
enum class TaskKind { kDbIndex, kKMeans, kCorrelation, kDbscan };

const char* WorkloadName(WorkloadKind workload);
const char* TaskName(TaskKind task);

/// Full configuration of one experiment (one dataset x one task).
struct ExperimentConfig {
  WorkloadKind workload = WorkloadKind::kCora;
  TaskKind task = TaskKind::kDbIndex;

  /// 0 keeps the generator's default initial size; otherwise overrides it
  /// (used to scale experiments up/down).
  size_t scale = 0;
  /// 0 keeps the generator's default seed.
  uint64_t seed = 0;

  /// Snapshots served by the batch algorithm while DynamicC observes
  /// (the training phase).
  int training_rounds = 2;

  int kmeans_k = 24;
  Dbscan::Options dbscan;
  /// DB-index shape parameters (see DbIndexObjective).
  double db_separation_floor = 0.05;
  double db_singleton_scatter = 0.5;

  /// Slightly relaxed from the paper's strict minimum rule: tolerating the
  /// 5% oddest positive training samples keeps θ meaningful when classes
  /// overlap (the strict rule degenerates to "flag everything").
  ThresholdPolicy threshold{/*positive_quantile=*/0.05, /*floor=*/0.05,
                            /*ceiling=*/0.95};
  DynamicCOptions dynamicc;
  /// Trainer configuration (negative sampling weights, sample cap).
  EvolutionTrainer::Options trainer;
  /// Refit cadence of the dynamic phase (see DynamicCSession::Options).
  int retrain_every = 1;
  /// Periodic batch re-observation cadence (0 = pure dynamic mode, what
  /// the paper's latency figures measure; see DynamicCSession::Options).
  int observe_every = 0;
  /// When >= 0, overrides both decision thresholds after training — the
  /// §5.4 accuracy/efficiency trade-off knob (ablation A1).
  double theta_override = -1.0;

  /// Compute quality metrics against per-snapshot batch references. Turn
  /// off for latency-only sweeps (saves the reference batch runs).
  bool compute_quality = true;

  /// Similarity-core configuration of the run's graph (indexed batch
  /// kernels vs seed scalar loop, candidate-history mode). The default
  /// (indexed, order-only history) is byte-identical to the scalar core.
  SimilarityGraph::Options sim_core;
};

/// One method's measurement at one snapshot.
struct SeriesPoint {
  size_t snapshot = 0;
  size_t num_objects = 0;
  size_t num_clusters = 0;
  double latency_ms = 0.0;
  /// Objective score after re-clustering (raw SSE for k-means; NaN for
  /// DBSCAN, which has no objective).
  double objective = 0.0;
  /// Quality vs the batch reference (only when compute_quality).
  QualityReport quality;
  /// DynamicC-only counters (zeros for other methods).
  ReclusterReport dynamicc;
};

/// A labelled series of snapshot measurements (one curve in a figure).
struct Series {
  std::string method;
  std::vector<SeriesPoint> points;
  double total_latency_ms = 0.0;
};

/// Runs the paper's methods over one workload stream with identical object
/// ids, so results are directly comparable. Typical use:
///
///   ExperimentHarness harness(config);
///   Series batch  = harness.RunBatch();      // also builds references
///   Series naive  = harness.RunNaive();
///   Series greedy = harness.RunGreedy();     // also caches GreedySet states
///   Series dyn    = harness.RunDynamicC(/*greedy_set=*/false);
class ExperimentHarness {
 public:
  explicit ExperimentHarness(ExperimentConfig config);

  /// The underlying batch algorithm re-run from scratch every snapshot
  /// (the paper's quality ground truth; its clusterings become the
  /// references for every other method's F1).
  Series RunBatch();

  Series RunNaive();

  /// The Greedy incremental baseline; its per-snapshot clusterings are
  /// cached for the GreedySet scenario.
  Series RunGreedy();

  /// DynamicC. `greedy_set` selects the §7.1 GreedySet scenario (each
  /// round starts from Greedy's previous result; requires RunGreedy
  /// first); otherwise DynamicSet (own previous clustering).
  Series RunDynamicC(bool greedy_set);

  /// Training material harvested from observed batch rounds — the §5.2
  /// merge/split sample sets. Used by the ML-model experiments (Fig. 3,
  /// Tables 4 and 5) and the sampling/feature ablations.
  struct SampleHarvest {
    SampleSet merge;
    SampleSet split;
  };

  /// Runs the initial load plus `observed_rounds` snapshots with the batch
  /// algorithm under observation and returns the accumulated samples.
  SampleHarvest HarvestSamples(int observed_rounds);

  /// Per-snapshot batch reference clusterings (canonical member lists).
  const std::vector<std::vector<std::vector<ObjectId>>>& references() const {
    return references_;
  }

  const ExperimentConfig& config() const { return config_; }
  const WorkloadStream& stream() const { return stream_; }

  /// Objects alive after the initial load (before snapshot 1).
  size_t initial_size() const { return stream_.initial.size(); }

 private:
  /// Everything one method run needs, built fresh per run so methods can't
  /// interfere with each other.
  struct RunEnv {
    Dataset dataset;
    DatasetProfile profile;
    std::unique_ptr<SimilarityGraph> graph;
    std::unique_ptr<ClusteringEngine> engine;
    std::unique_ptr<ObjectiveFunction> objective;  // null for DBSCAN
    /// Cheap objective used only to seed from-scratch agglomeration when
    /// the task objective has expensive deltas (DB-index).
    std::unique_ptr<ObjectiveFunction> bootstrap_objective;
    std::unique_ptr<Dbscan> dbscan;                // set for DBSCAN task
    std::unique_ptr<ChangeValidator> validator;
    std::vector<std::unique_ptr<BatchAlgorithm>> batch_stages;
    std::unique_ptr<BatchAlgorithm> batch;

    /// Applies ops (§6.1 semantics); returns added/updated ids.
    std::vector<ObjectId> Apply(const OperationBatch& ops);
  };

  std::unique_ptr<RunEnv> MakeEnv();
  double ObjectiveOf(RunEnv& env) const;
  void FillQuality(size_t snapshot, RunEnv& env, SeriesPoint* point) const;

  ExperimentConfig config_;
  WorkloadStream stream_;
  std::vector<std::vector<std::vector<ObjectId>>> references_;
  std::vector<std::vector<std::vector<ObjectId>>> greedy_results_;
};

/// Enforces the fixed-k constraint after incremental re-clustering on the
/// k-means task: while the partition has more than `target_k` clusters,
/// the smallest cluster is merged into the one with the nearest centroid.
/// Blocking-based similarity graphs cannot express merges between distant
/// clusters (no edges), so graph-driven algorithms need this repair to
/// stay comparable with the batch k-means — see DESIGN.md note 4.
void RepairClusterCount(ClusteringEngine* engine, size_t target_k);

/// Generates the workload stream for `workload` with optional scale/seed
/// overrides (0 = generator defaults).
WorkloadStream MakeStream(WorkloadKind workload, size_t scale, uint64_t seed);

/// The owned objective/validator/batch pipeline of one graph-driven task
/// (correlation or db-index). One builder serves both serving paths —
/// the harness's single-engine RunEnv and the sharded service's
/// per-shard environments — so the batch stages and their tuning
/// constants cannot drift apart between `--shards N` and the
/// single-engine run they are compared against.
struct TaskPipeline {
  std::unique_ptr<ObjectiveFunction> objective;
  /// db-index only: the O(1)-delta objective its agglomeration
  /// bootstrap runs on (the task objective's deltas are O(k+E)).
  std::unique_ptr<ObjectiveFunction> bootstrap_objective;
  std::unique_ptr<ChangeValidator> validator;
  /// Stages referenced by `batch` when it is a CompositeBatch.
  std::vector<std::unique_ptr<BatchAlgorithm>> stages;
  std::unique_ptr<BatchAlgorithm> batch;
};

/// Builds the pipeline for TaskKind::kCorrelation or kDbIndex (the
/// tasks that need neither the dataset nor the graph to construct);
/// other tasks are a caller error.
TaskPipeline MakeTaskPipeline(const ExperimentConfig& config);

/// The Table-1 profile (measure/blocker/threshold) for `workload`.
DatasetProfile MakeProfile(WorkloadKind workload);

}  // namespace dynamicc

#endif  // DYNAMICC_HARNESS_EXPERIMENT_H_
