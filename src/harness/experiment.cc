#include "harness/experiment.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "baseline/greedy.h"
#include "baseline/naive.h"
#include "batch/agglomerative.h"
#include "batch/hill_climbing.h"
#include "batch/kmeans_lloyd.h"
#include "core/trainer.h"
#include "ml/logistic_regression.h"
#include "objective/correlation.h"
#include "objective/db_index.h"
#include "objective/kmeans.h"
#include "util/logging.h"
#include "util/timer.h"
#include "workload/access_like.h"
#include "workload/cora_like.h"
#include "workload/febrl.h"
#include "workload/musicbrainz_like.h"
#include "workload/road_like.h"

namespace dynamicc {

const char* WorkloadName(WorkloadKind workload) {
  switch (workload) {
    case WorkloadKind::kCora:
      return "cora";
    case WorkloadKind::kMusic:
      return "music";
    case WorkloadKind::kSynthetic:
      return "synthetic";
    case WorkloadKind::kAccess:
      return "access";
    case WorkloadKind::kRoad:
      return "road";
  }
  return "?";
}

const char* TaskName(TaskKind task) {
  switch (task) {
    case TaskKind::kDbIndex:
      return "db-index";
    case TaskKind::kKMeans:
      return "k-means";
    case TaskKind::kCorrelation:
      return "correlation";
    case TaskKind::kDbscan:
      return "dbscan";
  }
  return "?";
}

WorkloadStream MakeStream(WorkloadKind workload, size_t scale,
                          uint64_t seed) {
  switch (workload) {
    case WorkloadKind::kCora: {
      CoraLikeGenerator::Options options;
      if (scale > 0) options.initial_count = scale;
      if (seed > 0) options.seed = seed;
      return CoraLikeGenerator(options).Generate();
    }
    case WorkloadKind::kMusic: {
      MusicBrainzLikeGenerator::Options options;
      if (scale > 0) options.initial_count = scale;
      if (seed > 0) options.seed = seed;
      return MusicBrainzLikeGenerator(options).Generate();
    }
    case WorkloadKind::kSynthetic: {
      FebrlGenerator::Options options;
      if (scale > 0) options.initial_count = scale;
      if (seed > 0) options.seed = seed;
      return FebrlGenerator(options).Generate();
    }
    case WorkloadKind::kAccess: {
      AccessLikeGenerator::Options options;
      if (scale > 0) options.initial_count = scale;
      if (seed > 0) options.seed = seed;
      return AccessLikeGenerator(options).Generate();
    }
    case WorkloadKind::kRoad: {
      RoadLikeGenerator::Options options;
      if (scale > 0) options.initial_count = scale;
      if (seed > 0) options.seed = seed;
      return RoadLikeGenerator(options).Generate();
    }
  }
  DYNAMICC_LOG(Fatal) << "unreachable workload kind";
  return {};
}

DatasetProfile MakeProfile(WorkloadKind workload) {
  switch (workload) {
    case WorkloadKind::kCora:
      return CoraLikeGenerator::Profile();
    case WorkloadKind::kMusic:
      return MusicBrainzLikeGenerator::Profile();
    case WorkloadKind::kSynthetic:
      return FebrlGenerator::Profile();
    case WorkloadKind::kAccess:
      return AccessLikeGenerator::Profile();
    case WorkloadKind::kRoad:
      return RoadLikeGenerator::Profile();
  }
  DYNAMICC_LOG(Fatal) << "unreachable workload kind";
  return {};
}

TaskPipeline MakeTaskPipeline(const ExperimentConfig& config) {
  TaskPipeline pipeline;
  HillClimbing::Options refine;
  refine.from_current = true;
  switch (config.task) {
    case TaskKind::kDbIndex: {
      pipeline.objective = std::make_unique<DbIndexObjective>(
          config.db_separation_floor, config.db_singleton_scatter);
      // Bootstrap with the O(1)-delta correlation objective; DB-index
      // deltas are O(k+E) and would make from-scratch agglomeration
      // quadratic (the hill-climbing stage then refines on DB-index).
      pipeline.bootstrap_objective = std::make_unique<CorrelationObjective>();
      pipeline.stages.push_back(std::make_unique<GreedyAgglomerative>(
          pipeline.bootstrap_objective.get()));
      refine.prune_top = 16;
      refine.max_steps = 400;
      break;
    }
    case TaskKind::kCorrelation: {
      pipeline.objective = std::make_unique<CorrelationObjective>();
      pipeline.stages.push_back(
          std::make_unique<GreedyAgglomerative>(pipeline.objective.get()));
      refine.prune_top = 32;
      refine.max_steps = 2000;
      break;
    }
    default:
      DYNAMICC_LOG(Fatal)
          << "MakeTaskPipeline supports correlation and db-index only";
  }
  pipeline.validator =
      std::make_unique<ObjectiveValidator>(pipeline.objective.get());
  pipeline.stages.push_back(
      std::make_unique<HillClimbing>(pipeline.objective.get(), refine));
  pipeline.batch = std::make_unique<CompositeBatch>(
      std::vector<BatchAlgorithm*>{pipeline.stages[0].get(),
                                   pipeline.stages[1].get()},
      "hill-climbing");
  return pipeline;
}

void RepairClusterCount(ClusteringEngine* engine, size_t target_k) {
  const Dataset& dataset = engine->graph().dataset();
  while (engine->clustering().num_clusters() > target_k) {
    // Centroids of all clusters (recomputed per merge; the repair loop is
    // short in practice — a handful of stragglers per snapshot).
    std::unordered_map<ClusterId, std::vector<double>> centroids;
    ClusterId smallest = kInvalidCluster;
    size_t smallest_size = 0;
    for (ClusterId cluster : engine->clustering().ClusterIds()) {
      const auto& members = engine->clustering().Members(cluster);
      std::vector<double> sum;
      for (ObjectId member : members) {
        const auto& point = dataset.Get(member).numeric;
        if (sum.empty()) sum.assign(point.size(), 0.0);
        for (size_t d = 0; d < point.size(); ++d) sum[d] += point[d];
      }
      for (double& v : sum) v /= static_cast<double>(members.size());
      centroids[cluster] = std::move(sum);
      if (smallest == kInvalidCluster || members.size() < smallest_size) {
        smallest = cluster;
        smallest_size = members.size();
      }
    }
    const auto& own = centroids.at(smallest);
    ClusterId best = kInvalidCluster;
    double best_distance = std::numeric_limits<double>::infinity();
    for (const auto& [cluster, centroid] : centroids) {
      if (cluster == smallest) continue;
      double d = 0.0;
      for (size_t i = 0; i < centroid.size(); ++i) {
        double diff = centroid[i] - own[i];
        d += diff * diff;
      }
      if (d < best_distance) {
        best_distance = d;
        best = cluster;
      }
    }
    if (best == kInvalidCluster) break;
    engine->Merge(best, smallest);
  }
}

ExperimentHarness::ExperimentHarness(ExperimentConfig config)
    : config_(config),
      stream_(MakeStream(config.workload, config.scale, config.seed)) {}

std::vector<ObjectId> ExperimentHarness::RunEnv::Apply(
    const OperationBatch& ops) {
  std::vector<ObjectId> changed;
  for (const DataOperation& op : ops) {
    switch (op.kind) {
      case DataOperation::Kind::kAdd: {
        ObjectId id = dataset.Add(op.record);
        graph->AddObject(id);
        engine->AddObjectAsSingleton(id);
        changed.push_back(id);
        break;
      }
      case DataOperation::Kind::kRemove:
        engine->RemoveObject(op.target);
        graph->RemoveObject(op.target);
        dataset.Remove(op.target);
        break;
      case DataOperation::Kind::kUpdate: {
        Record old_record = dataset.Get(op.target);
        engine->RemoveObject(op.target);
        dataset.Update(op.target, op.record);
        graph->UpdateObject(op.target, old_record);
        engine->AddObjectAsSingleton(op.target);
        changed.push_back(op.target);
        break;
      }
    }
  }
  return changed;
}

std::unique_ptr<ExperimentHarness::RunEnv> ExperimentHarness::MakeEnv() {
  auto env = std::make_unique<RunEnv>();
  DatasetProfile profile = MakeProfile(config_.workload);
  env->graph = std::make_unique<SimilarityGraph>(
      &env->dataset, profile.measure.get(), std::move(profile.blocker),
      profile.min_similarity, config_.sim_core);
  env->profile = std::move(profile);  // keeps the measure alive
  env->engine = std::make_unique<ClusteringEngine>(env->graph.get());

  switch (config_.task) {
    case TaskKind::kDbIndex:
    case TaskKind::kCorrelation: {
      TaskPipeline pipeline = MakeTaskPipeline(config_);
      env->objective = std::move(pipeline.objective);
      env->bootstrap_objective = std::move(pipeline.bootstrap_objective);
      env->validator = std::move(pipeline.validator);
      env->batch_stages = std::move(pipeline.stages);
      env->batch = std::move(pipeline.batch);
      break;
    }
    case TaskKind::kKMeans: {
      env->objective = std::make_unique<KMeansObjective>(
          &env->dataset, config_.kmeans_k);
      env->validator =
          std::make_unique<ObjectiveValidator>(env->objective.get());
      KMeansLloyd::Options lloyd;
      lloyd.k = config_.kmeans_k;
      auto seed_stage = std::make_unique<KMeansLloyd>(lloyd);
      HillClimbing::Options refine;
      refine.from_current = true;
      refine.prune_top = 16;
      refine.max_steps = 200;
      refine.allow_split = false;  // k stays fixed: moves and merges only
      auto climb =
          std::make_unique<HillClimbing>(env->objective.get(), refine);
      env->batch_stages.push_back(std::move(seed_stage));
      env->batch_stages.push_back(std::move(climb));
      env->batch = std::make_unique<CompositeBatch>(
          std::vector<BatchAlgorithm*>{env->batch_stages[0].get(),
                                       env->batch_stages[1].get()},
          "kmeans-batch");
      break;
    }
    case TaskKind::kDbscan: {
      env->dbscan = std::make_unique<Dbscan>(config_.dbscan);
      env->validator = std::make_unique<DbscanValidator>(env->dbscan.get(),
                                                         env->graph.get());
      env->batch = std::make_unique<Dbscan>(config_.dbscan);
      break;
    }
  }
  return env;
}

double ExperimentHarness::ObjectiveOf(RunEnv& env) const {
  if (config_.task == TaskKind::kDbscan) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  if (config_.task == TaskKind::kKMeans) {
    return static_cast<const KMeansObjective*>(env.objective.get())
        ->Sse(*env.engine);
  }
  return env.objective->Evaluate(*env.engine);
}

void ExperimentHarness::FillQuality(size_t snapshot, RunEnv& env,
                                    SeriesPoint* point) const {
  if (!config_.compute_quality || snapshot >= references_.size()) return;
  point->quality = EvaluateQuality(env.engine->clustering().CanonicalClusters(),
                                   references_[snapshot]);
}

Series ExperimentHarness::RunBatch() {
  Series series;
  series.method = "batch";
  auto env = MakeEnv();
  references_.clear();

  env->Apply(stream_.initial);
  for (size_t snapshot = 0; snapshot < stream_.snapshots.size(); ++snapshot) {
    env->Apply(stream_.snapshots[snapshot]);
    // From scratch means *everything*: the batch approach re-derives the
    // pairwise similarity structure as well, so the timed region rebuilds
    // the graph over the alive objects before clustering. (Incremental
    // methods amortize exactly this work — it is their whole advantage.)
    Timer timer;
    DatasetProfile profile = MakeProfile(config_.workload);
    SimilarityGraph scratch_graph(&env->dataset, profile.measure.get(),
                                  std::move(profile.blocker),
                                  profile.min_similarity);
    for (ObjectId id : env->graph->Objects()) scratch_graph.AddObject(id);
    ClusteringEngine scratch_engine(&scratch_graph);
    env->batch->Run(&scratch_engine, nullptr);
    SeriesPoint point;
    point.snapshot = snapshot + 1;
    point.num_objects = env->dataset.alive_count();
    point.num_clusters = scratch_engine.clustering().num_clusters();
    point.latency_ms = timer.ElapsedMillis();
    // Score on the main engine after adopting the scratch result, so the
    // objective sees the same (incrementally maintained) graph the other
    // methods use.
    env->engine->SetClustering(scratch_engine.clustering());
    point.objective = ObjectiveOf(*env);
    point.quality = QualityReport{1.0, 1.0, 1.0, 1.0, 1.0};  // self-reference
    series.total_latency_ms += point.latency_ms;
    references_.push_back(env->engine->clustering().CanonicalClusters());
    series.points.push_back(point);
  }
  return series;
}

Series ExperimentHarness::RunNaive() {
  Series series;
  series.method = "naive";
  auto env = MakeEnv();
  NaiveIncremental::Options naive_options;
  // Fixed-k task: new objects must join one of the k clusters (or raw SSE
  // comparisons are meaningless), and "closest" means nearest centroid.
  naive_options.always_join = (config_.task == TaskKind::kKMeans);
  naive_options.nearest_centroid = (config_.task == TaskKind::kKMeans);
  NaiveIncremental naive(naive_options);

  env->Apply(stream_.initial);
  // Incremental methods start from the batch clustering of the initial
  // dataset (§7.2: snapshot-1 quality close to 1 for every method) —
  // untimed initialization, like DynamicC's round-0 observation.
  env->batch->Run(env->engine.get(), nullptr);
  for (size_t snapshot = 0; snapshot < stream_.snapshots.size(); ++snapshot) {
    auto changed = env->Apply(stream_.snapshots[snapshot]);
    Timer timer;
    naive.Process(env->engine.get(), changed);
    SeriesPoint point;
    point.snapshot = snapshot + 1;
    point.num_objects = env->dataset.alive_count();
    point.num_clusters = env->engine->clustering().num_clusters();
    point.latency_ms = timer.ElapsedMillis();
    point.objective = ObjectiveOf(*env);
    FillQuality(snapshot, *env, &point);
    series.total_latency_ms += point.latency_ms;
    series.points.push_back(point);
  }
  return series;
}

Series ExperimentHarness::RunGreedy() {
  Series series;
  series.method = "greedy";
  auto env = MakeEnv();
  greedy_results_.clear();

  // DBSCAN has no objective for Greedy to optimize; fall back to
  // correlation (a density-friendly default) for its decisions.
  std::unique_ptr<ObjectiveFunction> fallback;
  const ObjectiveFunction* objective = env->objective.get();
  if (objective == nullptr) {
    fallback = std::make_unique<CorrelationObjective>();
    objective = fallback.get();
  }
  GreedyIncremental greedy(objective);

  env->Apply(stream_.initial);
  // Same initialization as the other incremental methods: the batch
  // clustering of the initial dataset (untimed).
  env->batch->Run(env->engine.get(), nullptr);
  for (size_t snapshot = 0; snapshot < stream_.snapshots.size(); ++snapshot) {
    auto changed = env->Apply(stream_.snapshots[snapshot]);
    Timer timer;
    greedy.Process(env->engine.get(), changed);
    if (config_.task == TaskKind::kKMeans) {
      RepairClusterCount(env->engine.get(),
                         static_cast<size_t>(config_.kmeans_k));
    }
    SeriesPoint point;
    point.snapshot = snapshot + 1;
    point.num_objects = env->dataset.alive_count();
    point.num_clusters = env->engine->clustering().num_clusters();
    point.latency_ms = timer.ElapsedMillis();
    point.objective = ObjectiveOf(*env);
    FillQuality(snapshot, *env, &point);
    series.total_latency_ms += point.latency_ms;
    greedy_results_.push_back(env->engine->clustering().CanonicalClusters());
    series.points.push_back(point);
  }
  return series;
}

ExperimentHarness::SampleHarvest ExperimentHarness::HarvestSamples(
    int observed_rounds) {
  auto env = MakeEnv();
  DynamicCSession::Options session_options;
  session_options.threshold = config_.threshold;
  session_options.trainer = config_.trainer;
  DynamicCSession session(&env->dataset, env->graph.get(), env->batch.get(),
                          env->validator.get(),
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          session_options);
  session.ApplyOperations(stream_.initial);
  session.ObserveBatchRound({});
  int rounds = std::min<int>(observed_rounds,
                             static_cast<int>(stream_.snapshots.size()));
  for (int snapshot = 0; snapshot < rounds; ++snapshot) {
    auto changed = session.ApplyOperations(stream_.snapshots[snapshot]);
    session.ObserveBatchRound(changed);
  }
  SampleHarvest harvest;
  harvest.merge = session.trainer().merge_samples();
  harvest.split = session.trainer().split_samples();
  return harvest;
}

Series ExperimentHarness::RunDynamicC(bool greedy_set) {
  Series series;
  series.method = greedy_set ? "dynamicc-greedyset" : "dynamicc-dynamicset";
  if (greedy_set) {
    DYNAMICC_CHECK(!greedy_results_.empty())
        << "GreedySet scenario requires RunGreedy() first";
  }
  auto env = MakeEnv();

  DynamicCOptions dyn_options = config_.dynamicc;
  if (config_.task == TaskKind::kKMeans) {
    dyn_options.split.split_as_move = true;  // keep k fixed (DESIGN note 4)
    // Partner choice is geometric for k-means; SSE deltas are cheap.
    dyn_options.merge.partner_ranking_objective = env->objective.get();
  }
  DynamicCSession::Options session_options;
  session_options.threshold = config_.threshold;
  session_options.dynamicc = dyn_options;
  session_options.trainer = config_.trainer;
  session_options.retrain_every = config_.retrain_every;
  session_options.observe_every = config_.observe_every;
  DynamicCSession session(&env->dataset, env->graph.get(), env->batch.get(),
                          env->validator.get(),
                          std::make_unique<LogisticRegression>(),
                          std::make_unique<LogisticRegression>(),
                          session_options);

  // The session owns its engine; the env engine stays unused here.
  session.ApplyOperations(stream_.initial);
  // Initial clustering via one observed batch round (round 0, §4.2).
  session.ObserveBatchRound(/*changed=*/{});

  for (size_t snapshot = 0; snapshot < stream_.snapshots.size(); ++snapshot) {
    if (greedy_set && snapshot > 0) {
      // GreedySet: start from Greedy's previous-round clustering.
      Clustering start;
      for (const auto& members : greedy_results_[snapshot - 1]) {
        ClusterId cluster = start.CreateCluster();
        for (ObjectId object : members) start.Assign(object, cluster);
      }
      session.engine().SetClustering(start);
    }

    auto changed = session.ApplyOperations(stream_.snapshots[snapshot]);
    SeriesPoint point;
    point.snapshot = snapshot + 1;
    point.num_objects = env->dataset.alive_count();

    if (static_cast<int>(snapshot) < config_.training_rounds) {
      // Training phase: the batch algorithm serves while DynamicC observes.
      Timer timer;
      auto report = session.ObserveBatchRound(changed);
      point.latency_ms = timer.ElapsedMillis();
      (void)report;
      if (config_.theta_override >= 0.0) {
        session.dynamicc().SetThetas(config_.theta_override,
                                     config_.theta_override);
      }
    } else {
      Timer timer;
      auto report = session.DynamicRound(changed);
      if (config_.task == TaskKind::kKMeans) {
        RepairClusterCount(&session.engine(),
                           static_cast<size_t>(config_.kmeans_k));
      }
      point.latency_ms = timer.ElapsedMillis();
      point.dynamicc = report.detail;
    }

    point.num_clusters = session.engine().clustering().num_clusters();
    // Score on the session engine.
    if (config_.task == TaskKind::kKMeans) {
      point.objective =
          static_cast<const KMeansObjective*>(env->objective.get())
              ->Sse(session.engine());
    } else if (config_.task == TaskKind::kDbscan) {
      point.objective = std::numeric_limits<double>::quiet_NaN();
    } else {
      point.objective = env->objective->Evaluate(session.engine());
    }
    if (config_.compute_quality && snapshot < references_.size()) {
      point.quality =
          EvaluateQuality(session.engine().clustering().CanonicalClusters(),
                          references_[snapshot]);
    }
    series.total_latency_ms += point.latency_ms;
    series.points.push_back(point);
  }
  return series;
}

}  // namespace dynamicc
