#ifndef DYNAMICC_WORKLOAD_PROFILE_H_
#define DYNAMICC_WORKLOAD_PROFILE_H_

#include <memory>

#include "data/blocking.h"
#include "data/similarity.h"

namespace dynamicc {

/// Everything a harness needs to build the similarity graph for one
/// dataset: the similarity measure from Table 1, a matching blocking
/// strategy, and the edge-retention threshold.
struct DatasetProfile {
  std::unique_ptr<SimilarityMeasure> measure;
  std::unique_ptr<CandidateProvider> blocker;
  double min_similarity = 0.1;
};

}  // namespace dynamicc

#endif  // DYNAMICC_WORKLOAD_PROFILE_H_
