#include "workload/febrl.h"

#include <deque>
#include <iterator>
#include <memory>
#include <string>

#include "data/similarity_measures.h"
#include "util/string_utils.h"

namespace dynamicc {

namespace {

const char* const kGivenNames[] = {
    "james",  "mary",    "john",    "patricia", "robert", "jennifer",
    "michael", "linda",  "william", "elizabeth", "david", "barbara",
    "richard", "susan",  "joseph",  "jessica",  "thomas", "sarah",
    "charles", "karen",  "daniel",  "nancy",    "matthew", "lisa",
    "anthony", "margaret", "mark",  "betty",    "donald", "sandra"};

const char* const kSurnames[] = {
    "anderson", "baker",  "carter",  "davies",  "edwards", "foster",
    "graham",   "harris", "irwin",   "jackson", "kelly",   "lawson",
    "morgan",   "nolan",  "osborne", "palmer",  "quincy",  "roberts",
    "stevens",  "turner", "underwood", "vaughan", "walker", "young"};

const char* const kStreets[] = {
    "acacia avenue", "birch street",  "cedar lane",   "dune road",
    "elm terrace",   "fern drive",    "grove parade", "holly court",
    "ivy close",     "jasmine way",   "kings road",   "larch walk",
    "maple crescent", "north parade", "oak street",   "pine grove"};

const char* const kCities[] = {"newcastle", "bathurst", "dubbo",   "orange",
                               "tamworth", "armidale", "goulburn", "wagga",
                               "albury",   "mildura",  "bendigo",  "ballarat"};

struct Entity {
  uint32_t id;
  std::string given;
  std::string surname;
  std::string street_no;
  std::string street;
  std::string city;
  std::string phone;
};

struct PoolState {
  std::deque<Record> pending;
  uint32_t next_entity = 0;
};

Entity MakeEntity(uint32_t id, Rng* rng) {
  Entity entity;
  entity.id = id;
  entity.given = kGivenNames[rng->Index(std::size(kGivenNames))];
  entity.surname = kSurnames[rng->Index(std::size(kSurnames))];
  entity.street_no = std::to_string(1 + rng->Index(250));
  entity.street = kStreets[rng->Index(std::size(kStreets))];
  entity.city = kCities[rng->Index(std::size(kCities))];
  entity.phone.reserve(8);
  for (int i = 0; i < 8; ++i) {
    entity.phone += static_cast<char>('0' + rng->Index(10));
  }
  return entity;
}

Record Render(const Entity& entity) {
  Record record;
  record.entity = entity.id + 1;
  record.tokens = {entity.given, entity.surname, entity.street_no};
  for (const auto& token : SplitTokens(entity.street)) {
    record.tokens.push_back(token);
  }
  record.tokens.push_back(entity.city);
  record.tokens.push_back(entity.phone);
  record.text = JoinStrings(record.tokens, " ");
  return record;
}

Record RecordFrom(const Entity& entity, Rng* rng, bool is_duplicate) {
  Entity noisy = entity;
  if (is_duplicate) {
    if (rng->Chance(0.5)) noisy.given = ApplyTypo(noisy.given, rng);
    if (rng->Chance(0.5)) noisy.surname = ApplyTypo(noisy.surname, rng);
    if (rng->Chance(0.3)) noisy.street = ApplyTypo(noisy.street, rng);
    if (rng->Chance(0.2)) noisy.city = ApplyTypo(noisy.city, rng);
    if (rng->Chance(0.3)) {
      // Swap two phone digits (a classic linkage error).
      size_t i = rng->Index(noisy.phone.size());
      size_t j = rng->Index(noisy.phone.size());
      std::swap(noisy.phone[i], noisy.phone[j]);
    }
    if (rng->Chance(0.15)) noisy.given = noisy.given.substr(0, 1);  // initial
  }
  return Render(noisy);
}

}  // namespace

FebrlGenerator::FebrlGenerator() : FebrlGenerator(Options{}) {}

FebrlGenerator::FebrlGenerator(Options options)
    : options_(std::move(options)) {}

WorkloadStream FebrlGenerator::Generate() {
  auto state = std::make_shared<PoolState>();
  Options opts = options_;

  auto refill = [state, opts](Rng* rng) {
    std::vector<Record> chunk;
    for (int e = 0; e < 100; ++e) {
      Entity entity = MakeEntity(state->next_entity++, rng);
      int copies = 1 + SampleDuplicateCount(opts.distribution,
                                            opts.duplicate_mean,
                                            opts.max_duplicates, rng);
      for (int c = 0; c < copies; ++c) {
        chunk.push_back(RecordFrom(entity, rng, c > 0));
      }
    }
    rng->Shuffle(&chunk);
    for (auto& record : chunk) state->pending.push_back(std::move(record));
  };

  StreamBuilder builder(options_.seed);
  return builder.Build(
      options_.initial_count, options_.schedule,
      [state, refill](Rng* rng) {
        if (state->pending.empty()) refill(rng);
        Record record = std::move(state->pending.front());
        state->pending.pop_front();
        return record;
      },
      // Update: modify attribute values of the existing record (token-level
      // corruption; entity identity is preserved).
      [](const Record& old_record, Rng* rng) {
        Record record = old_record;
        size_t edits = 1 + rng->Index(2);
        for (size_t i = 0; i < edits && !record.tokens.empty(); ++i) {
          size_t pos = rng->Index(record.tokens.size());
          record.tokens[pos] = ApplyTypo(record.tokens[pos], rng);
        }
        record.text = JoinStrings(record.tokens, " ");
        return record;
      });
}

DatasetProfile FebrlGenerator::Profile() {
  DatasetProfile profile;
  std::vector<std::unique_ptr<SimilarityMeasure>> parts;
  parts.push_back(std::make_unique<LevenshteinSimilarity>());
  parts.push_back(std::make_unique<JaccardSimilarity>());
  profile.measure = std::make_unique<CombinedSimilarity>(
      std::move(parts), std::vector<double>{0.5, 0.5});
  profile.blocker = std::make_unique<TokenBlocker>(/*prefix_len=*/4);
  // Duplicates of one person score ~0.7+; records of *different* people
  // sharing a name/city score ~0.4. The threshold sits between the modes
  // so cross-person edges don't glue entities together.
  profile.min_similarity = 0.45;
  return profile;
}

}  // namespace dynamicc
