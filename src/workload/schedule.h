#ifndef DYNAMICC_WORKLOAD_SCHEDULE_H_
#define DYNAMICC_WORKLOAD_SCHEDULE_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "data/operations.h"
#include "util/rng.h"

namespace dynamicc {

/// Operation mix of one snapshot, as fractions of the dataset size at the
/// start of the snapshot (what Fig. 5a plots in percent).
struct SnapshotSpec {
  double add_fraction = 0.2;
  double remove_fraction = 0.05;
  double update_fraction = 0.0;
};

/// The per-dataset snapshot schedules used in the paper's evaluation
/// (Fig. 5a: Cora and Synthetic have 8 snapshots, the others 10; updates
/// appear only in the Synthetic workload).
std::vector<SnapshotSpec> DefaultSchedule(const std::string& dataset_name);

/// A fully materialized dynamic workload: the initial bulk load plus one
/// operation batch per snapshot. Applying the batches in order to a fresh
/// Dataset assigns exactly the ObjectIds the batches reference.
struct WorkloadStream {
  OperationBatch initial;
  std::vector<OperationBatch> snapshots;
};

/// Shared machinery for the dataset simulators: tracks which ids are alive,
/// emits adds/removes/updates per the schedule, and delegates record
/// creation and update-corruption to the generator callbacks.
class StreamBuilder {
 public:
  /// Creates a fresh record (a new entity member or duplicate).
  using MakeRecordFn = std::function<Record(Rng*)>;
  /// Produces the updated content of an existing record (same entity).
  using CorruptRecordFn = std::function<Record(const Record&, Rng*)>;

  explicit StreamBuilder(uint64_t seed) : rng_(seed) {}

  WorkloadStream Build(size_t initial_count,
                       const std::vector<SnapshotSpec>& schedule,
                       const MakeRecordFn& make_record,
                       const CorruptRecordFn& corrupt_record);

 private:
  DataOperation MakeAdd(const MakeRecordFn& make_record);

  Rng rng_;
  ObjectId next_id_ = 0;
  std::vector<ObjectId> alive_;
  std::unordered_map<ObjectId, Record> contents_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_WORKLOAD_SCHEDULE_H_
