#include "workload/schedule.h"

#include <algorithm>

#include "util/logging.h"

namespace dynamicc {

std::vector<SnapshotSpec> DefaultSchedule(const std::string& dataset_name) {
  auto spec = [](double add, double remove, double update) {
    return SnapshotSpec{add / 100.0, remove / 100.0, update / 100.0};
  };
  if (dataset_name == "cora") {
    return {spec(32, 3, 0), spec(28, 4, 0), spec(26, 5, 0), spec(24, 3, 0),
            spec(22, 4, 0), spec(20, 5, 0), spec(18, 3, 0), spec(16, 4, 0)};
  }
  if (dataset_name == "music") {
    return {spec(22, 4, 0), spec(20, 5, 0), spec(18, 3, 0), spec(17, 4, 0),
            spec(16, 5, 0), spec(15, 3, 0), spec(14, 4, 0), spec(13, 5, 0),
            spec(12, 3, 0), spec(11, 4, 0)};
  }
  if (dataset_name == "access") {
    return {spec(35, 2, 0), spec(32, 3, 0), spec(30, 4, 0), spec(28, 2, 0),
            spec(26, 3, 0), spec(24, 4, 0), spec(22, 2, 0), spec(20, 3, 0),
            spec(18, 4, 0), spec(16, 2, 0)};
  }
  if (dataset_name == "road") {
    return {spec(16, 2, 0), spec(15, 3, 0), spec(14, 2, 0), spec(13, 3, 0),
            spec(13, 2, 0), spec(12, 3, 0), spec(12, 2, 0), spec(11, 3, 0),
            spec(11, 2, 0), spec(10, 2, 0)};
  }
  if (dataset_name == "synthetic") {
    return {spec(26, 4, 9), spec(24, 5, 8), spec(22, 3, 7), spec(20, 4, 9),
            spec(18, 5, 8), spec(16, 3, 7), spec(14, 4, 9), spec(12, 5, 8)};
  }
  DYNAMICC_LOG(Fatal) << "unknown dataset schedule: " << dataset_name;
  return {};
}

DataOperation StreamBuilder::MakeAdd(const MakeRecordFn& make_record) {
  DataOperation op;
  op.kind = DataOperation::Kind::kAdd;
  op.record = make_record(&rng_);
  ObjectId id = next_id_++;
  alive_.push_back(id);
  contents_[id] = op.record;
  return op;
}

WorkloadStream StreamBuilder::Build(size_t initial_count,
                                    const std::vector<SnapshotSpec>& schedule,
                                    const MakeRecordFn& make_record,
                                    const CorruptRecordFn& corrupt_record) {
  WorkloadStream stream;
  for (size_t i = 0; i < initial_count; ++i) {
    stream.initial.push_back(MakeAdd(make_record));
  }

  for (const SnapshotSpec& spec : schedule) {
    OperationBatch batch;
    size_t size_now = alive_.size();
    size_t adds = static_cast<size_t>(spec.add_fraction * size_now);
    size_t removes = static_cast<size_t>(spec.remove_fraction * size_now);
    size_t updates = static_cast<size_t>(spec.update_fraction * size_now);
    removes = std::min(removes, alive_.size() > adds ? alive_.size() - 1 : 0);

    for (size_t i = 0; i < adds; ++i) batch.push_back(MakeAdd(make_record));

    for (size_t i = 0; i < removes && !alive_.empty(); ++i) {
      size_t pick = rng_.Index(alive_.size());
      ObjectId id = alive_[pick];
      alive_[pick] = alive_.back();
      alive_.pop_back();
      contents_.erase(id);
      DataOperation op;
      op.kind = DataOperation::Kind::kRemove;
      op.target = id;
      batch.push_back(op);
    }

    for (size_t i = 0; i < updates && !alive_.empty(); ++i) {
      ObjectId id = alive_[rng_.Index(alive_.size())];
      DataOperation op;
      op.kind = DataOperation::Kind::kUpdate;
      op.target = id;
      op.record = corrupt_record(contents_.at(id), &rng_);
      contents_[id] = op.record;
      batch.push_back(op);
    }

    stream.snapshots.push_back(std::move(batch));
  }
  return stream;
}

}  // namespace dynamicc
