#include "workload/access_like.h"

#include <cmath>
#include <memory>

#include "data/similarity_measures.h"

namespace dynamicc {

namespace {
// Kernel scale of the shared profile (2x default component stddev).
constexpr double kKernelScale = 4.0;
}  // namespace

AccessLikeGenerator::AccessLikeGenerator()
    : AccessLikeGenerator(Options{}) {}

AccessLikeGenerator::AccessLikeGenerator(Options options)
    : options_(std::move(options)) {}

WorkloadStream AccessLikeGenerator::Generate() {
  Options opts = options_;
  // Fixed component means, drawn once up front.
  Rng setup(opts.seed * 977 + 3);
  auto means = std::make_shared<std::vector<std::vector<double>>>();
  for (int c = 0; c < opts.components; ++c) {
    std::vector<double> mean(opts.dims);
    for (int d = 0; d < opts.dims; ++d) {
      mean[d] = setup.Uniform(0.0, opts.space_extent);
    }
    means->push_back(std::move(mean));
  }

  auto sample_point = [opts, means](uint32_t component, Rng* rng) {
    Record record;
    record.entity = component + 1;
    record.numeric.resize(opts.dims);
    for (int d = 0; d < opts.dims; ++d) {
      record.numeric[d] =
          (*means)[component][d] + rng->Gaussian(0.0, opts.component_stddev);
    }
    return record;
  };

  StreamBuilder builder(opts.seed);
  return builder.Build(
      opts.initial_count, opts.schedule,
      [opts, sample_point](Rng* rng) {
        uint32_t component =
            static_cast<uint32_t>(rng->Index(opts.components));
        return sample_point(component, rng);
      },
      [opts, sample_point](const Record& old_record, Rng* rng) {
        if (rng->Chance(opts.relocate_probability)) {
          // Structural update: the object moves to another group.
          uint32_t component =
              static_cast<uint32_t>(rng->Index(opts.components));
          return sample_point(component, rng);
        }
        Record record = old_record;
        for (double& v : record.numeric) {
          v += rng->Gaussian(0.0, opts.component_stddev * 0.5);
        }
        return record;
      });
}

double AccessLikeGenerator::SimilarityAtDistance(double distance) {
  return std::exp(-(distance * distance) / (2.0 * kKernelScale * kKernelScale));
}

DatasetProfile AccessLikeGenerator::Profile() {
  DatasetProfile profile;
  profile.measure = std::make_unique<EuclideanSimilarity>(kKernelScale);
  // Cells must cover the min-similarity radius: sim 0.05 ⇔ d ≈ 2.45·scale.
  profile.blocker = std::make_unique<GridBlocker>(2.5 * kKernelScale);
  profile.min_similarity = 0.05;
  return profile;
}

}  // namespace dynamicc
