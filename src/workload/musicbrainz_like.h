#ifndef DYNAMICC_WORKLOAD_MUSICBRAINZ_LIKE_H_
#define DYNAMICC_WORKLOAD_MUSICBRAINZ_LIKE_H_

#include <cstdint>
#include <vector>

#include "workload/distributions.h"
#include "workload/profile.h"
#include "workload/schedule.h"

namespace dynamicc {

/// Synthetic stand-in for the MusicBrainz entity-resolution benchmark:
/// song records rendered as "artist - title (album)" strings with
/// release-variant noise (typos, abbreviations, "remastered"/"live"
/// suffixes, track-number prefixes). Trigram-cosine similarity (Table 1).
class MusicBrainzLikeGenerator {
 public:
  struct Options {
    size_t initial_count = 1000;
    std::vector<SnapshotSpec> schedule = DefaultSchedule("music");
    uint64_t seed = 23;
    double duplicate_mean = 2.0;
    int max_duplicates = 6;
    DuplicateDistribution distribution = DuplicateDistribution::kPoisson;
  };

  MusicBrainzLikeGenerator();
  explicit MusicBrainzLikeGenerator(Options options);

  static const char* Name() { return "music"; }

  WorkloadStream Generate();

  static DatasetProfile Profile();

 private:
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_WORKLOAD_MUSICBRAINZ_LIKE_H_
