#ifndef DYNAMICC_WORKLOAD_CORA_LIKE_H_
#define DYNAMICC_WORKLOAD_CORA_LIKE_H_

#include <cstdint>
#include <vector>

#include "workload/distributions.h"
#include "workload/profile.h"
#include "workload/schedule.h"

namespace dynamicc {

/// Synthetic stand-in for the Cora citation-matching dataset (see DESIGN.md
/// substitution table): bibliographic records (title tokens, authors,
/// venue, year) grouped into entities with Zipf-skewed duplicate counts and
/// token-level corruption. Jaccard similarity over tokens, like Table 1.
class CoraLikeGenerator {
 public:
  struct Options {
    size_t initial_count = 280;
    std::vector<SnapshotSpec> schedule = DefaultSchedule("cora");
    uint64_t seed = 11;
    double duplicate_mean = 2.5;
    int max_duplicates = 8;
    DuplicateDistribution distribution = DuplicateDistribution::kZipf;
  };

  CoraLikeGenerator();
  explicit CoraLikeGenerator(Options options);

  static const char* Name() { return "cora"; }

  /// Deterministic workload stream for the configured seed.
  WorkloadStream Generate();

  /// Similarity measure + blocking matching Table 1 (Jaccard, token index).
  static DatasetProfile Profile();

 private:
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_WORKLOAD_CORA_LIKE_H_
