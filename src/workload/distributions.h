#ifndef DYNAMICC_WORKLOAD_DISTRIBUTIONS_H_
#define DYNAMICC_WORKLOAD_DISTRIBUTIONS_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/rng.h"

namespace dynamicc {

/// Duplicate-count distribution of the Febrl-style generator (§7.1: the
/// synthetic dataset is generated with uniform, Poisson and Zipf duplicate
/// distributions).
enum class DuplicateDistribution { kUniform, kPoisson, kZipf };

/// Draws one rank from a Zipf(s) distribution over {1, ..., n} by inverse
/// CDF on precomputed weights. Deterministic given the Rng state.
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double exponent);

  /// Rank in [1, n]; rank 1 is the most likely.
  size_t Sample(Rng* rng) const;

 private:
  std::vector<double> cumulative_;
};

/// Number of duplicates for one original under the chosen distribution,
/// bounded by `max_duplicates`.
int SampleDuplicateCount(DuplicateDistribution distribution, double mean,
                         int max_duplicates, Rng* rng);

const char* DistributionName(DuplicateDistribution distribution);

/// Applies one random character-level corruption (insert / delete /
/// substitute / transpose) to `word` — the Febrl-style duplicate noise.
/// Words shorter than 2 characters are returned unchanged.
std::string ApplyTypo(const std::string& word, Rng* rng);

}  // namespace dynamicc

#endif  // DYNAMICC_WORKLOAD_DISTRIBUTIONS_H_
