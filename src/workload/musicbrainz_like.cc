#include "workload/musicbrainz_like.h"

#include <deque>
#include <iterator>
#include <memory>
#include <string>

#include "data/similarity_measures.h"
#include "util/string_utils.h"

namespace dynamicc {

namespace {

const char* const kTitleWords[] = {
    "love",   "night",  "dance",   "heart",  "fire",    "dream",  "river",
    "summer", "shadow", "light",   "golden", "highway", "thunder", "rain",
    "moon",   "city",   "stranger", "home",  "wild",    "blue",   "electric",
    "midnight", "silver", "broken", "crazy", "forever", "angel",  "storm"};

const char* const kArtists[] = {
    "the velvet sparrows", "iron meridian",  "miss dolores", "kid cascade",
    "the night office",    "paper lanterns", "violet ray",   "big sur radio",
    "the hollow men",      "juniper falls",  "saint motel",  "cobalt drive",
    "echo parade",         "the wandering",  "neon harvest", "low tide"};

const char* const kSuffixes[] = {" (live)", " (remastered)", " (acoustic)",
                                 " (radio edit)", " (demo)"};

struct Entity {
  uint32_t id;
  std::string artist;
  std::string title;
  std::string album;
};

struct PoolState {
  std::deque<Record> pending;
  uint32_t next_entity = 0;
};

Entity MakeEntity(uint32_t id, Rng* rng) {
  Entity entity;
  entity.id = id;
  entity.artist = kArtists[rng->Index(std::size(kArtists))];
  // Titles carry most of the discriminating trigrams: with short titles,
  // two different songs of one artist would be near-identical strings.
  size_t words = 3 + rng->Index(3);
  for (size_t i = 0; i < words; ++i) {
    if (i > 0) entity.title += " ";
    entity.title += kTitleWords[rng->Index(std::size(kTitleWords))];
  }
  entity.album = kTitleWords[rng->Index(std::size(kTitleWords))];
  return entity;
}

Record RecordFrom(const Entity& entity, Rng* rng, bool is_duplicate) {
  std::string artist = entity.artist;
  std::string title = entity.title;
  std::string album = entity.album;
  if (is_duplicate) {
    // Release-variant noise.
    if (rng->Chance(0.3)) title += kSuffixes[rng->Index(std::size(kSuffixes))];
    if (rng->Chance(0.25)) {
      title = std::to_string(1 + rng->Index(12)) + " - " + title;  // track no
    }
    if (rng->Chance(0.35)) title = ApplyTypo(title, rng);
    if (rng->Chance(0.25)) artist = ApplyTypo(artist, rng);
    if (rng->Chance(0.2)) album.clear();
  }
  Record record;
  record.entity = entity.id + 1;
  record.text = artist + " - " + title;
  if (!album.empty()) record.text += " (" + album + ")";
  return record;
}

}  // namespace

MusicBrainzLikeGenerator::MusicBrainzLikeGenerator()
    : MusicBrainzLikeGenerator(Options{}) {}

MusicBrainzLikeGenerator::MusicBrainzLikeGenerator(Options options)
    : options_(std::move(options)) {}

WorkloadStream MusicBrainzLikeGenerator::Generate() {
  auto state = std::make_shared<PoolState>();
  Options opts = options_;

  auto refill = [state, opts](Rng* rng) {
    std::vector<Record> chunk;
    for (int e = 0; e < 120; ++e) {
      Entity entity = MakeEntity(state->next_entity++, rng);
      int copies = 1 + SampleDuplicateCount(opts.distribution,
                                            opts.duplicate_mean,
                                            opts.max_duplicates, rng);
      for (int c = 0; c < copies; ++c) {
        chunk.push_back(RecordFrom(entity, rng, c > 0));
      }
    }
    rng->Shuffle(&chunk);
    for (auto& record : chunk) state->pending.push_back(std::move(record));
  };

  StreamBuilder builder(options_.seed);
  return builder.Build(
      options_.initial_count, options_.schedule,
      [state, refill](Rng* rng) {
        if (state->pending.empty()) refill(rng);
        Record record = std::move(state->pending.front());
        state->pending.pop_front();
        return record;
      },
      [](const Record& old_record, Rng* rng) {
        Record record = old_record;
        record.text = ApplyTypo(record.text, rng);
        return record;
      });
}

DatasetProfile MusicBrainzLikeGenerator::Profile() {
  DatasetProfile profile;
  profile.measure = std::make_unique<TrigramCosineSimilarity>();
  profile.blocker = std::make_unique<TokenBlocker>(/*prefix_len=*/4);
  // Release variants of one song score ~0.75+; different songs by the same
  // artist share the artist substring and score ~0.4-0.55. The threshold
  // must sit between those modes or the graph drowns in spurious edges.
  profile.min_similarity = 0.55;
  return profile;
}

}  // namespace dynamicc
