#include "workload/distributions.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace dynamicc {

ZipfSampler::ZipfSampler(size_t n, double exponent) {
  DYNAMICC_CHECK_GT(n, 0u);
  cumulative_.resize(n);
  double total = 0.0;
  for (size_t rank = 1; rank <= n; ++rank) {
    total += 1.0 / std::pow(static_cast<double>(rank), exponent);
    cumulative_[rank - 1] = total;
  }
  for (double& c : cumulative_) c /= total;
}

size_t ZipfSampler::Sample(Rng* rng) const {
  double u = rng->Uniform();
  auto it = std::lower_bound(cumulative_.begin(), cumulative_.end(), u);
  size_t index = static_cast<size_t>(it - cumulative_.begin());
  return std::min(index, cumulative_.size() - 1) + 1;
}

int SampleDuplicateCount(DuplicateDistribution distribution, double mean,
                         int max_duplicates, Rng* rng) {
  DYNAMICC_CHECK_GE(mean, 0.0);
  int count = 0;
  switch (distribution) {
    case DuplicateDistribution::kUniform:
      count = static_cast<int>(rng->Int(0, static_cast<int64_t>(2 * mean)));
      break;
    case DuplicateDistribution::kPoisson:
      count = rng->Poisson(mean);
      break;
    case DuplicateDistribution::kZipf: {
      // Heavy tail: most originals get few duplicates, some get many.
      ZipfSampler zipf(static_cast<size_t>(std::max(1, max_duplicates)), 1.2);
      count = static_cast<int>(zipf.Sample(rng)) - 1;
      break;
    }
  }
  return std::clamp(count, 0, max_duplicates);
}

const char* DistributionName(DuplicateDistribution distribution) {
  switch (distribution) {
    case DuplicateDistribution::kUniform:
      return "uniform";
    case DuplicateDistribution::kPoisson:
      return "poisson";
    case DuplicateDistribution::kZipf:
      return "zipf";
  }
  return "?";
}

std::string ApplyTypo(const std::string& word, Rng* rng) {
  if (word.size() < 2) return word;
  std::string out = word;
  size_t pos = rng->Index(out.size());
  char letter = static_cast<char>('a' + rng->Index(26));
  switch (rng->Index(4)) {
    case 0:  // substitute
      out[pos] = letter;
      break;
    case 1:  // delete
      out.erase(pos, 1);
      break;
    case 2:  // insert
      out.insert(pos, 1, letter);
      break;
    default:  // transpose with the next character
      if (pos + 1 < out.size()) std::swap(out[pos], out[pos + 1]);
      break;
  }
  return out;
}

}  // namespace dynamicc
