#include "workload/cora_like.h"

#include <deque>
#include <iterator>
#include <memory>
#include <string>

#include "data/similarity_measures.h"
#include "util/string_utils.h"

namespace dynamicc {

namespace {

const char* const kTitleWords[] = {
    "learning",   "neural",     "networks",  "bayesian",   "inference",
    "markov",     "models",     "clustering", "kernel",    "support",
    "vector",     "machines",   "genetic",   "algorithms", "reinforcement",
    "planning",   "knowledge",  "discovery", "databases",  "mining",
    "decision",   "trees",      "boosting",  "regression", "classification",
    "probabilistic", "graphical", "hidden",  "random",     "fields",
    "optimization", "stochastic", "gradient", "descent",   "temporal",
    "difference", "feature",    "selection", "dimensionality", "reduction",
    "spectral",   "analysis",   "inductive", "logic",      "programming",
    "information", "retrieval", "language",  "natural",    "processing"};

const char* const kSurnames[] = {
    "smith",   "johnson", "quinlan", "mitchell", "dietterich", "jordan",
    "hinton",  "sutton",  "barto",   "pearl",    "koller",     "friedman",
    "breiman", "vapnik",  "schapire", "freund",  "mccallum",   "cohen",
    "moore",   "kaelbling", "russell", "norvig",  "thrun",      "littman",
    "mooney",  "pazzani", "langley", "fisher",   "dean",       "boutilier"};

const char* const kVenues[] = {"icml",  "nips",  "aaai", "ijcai", "kdd",
                               "uai",   "colt",  "ecml", "icdm",  "jmlr",
                               "mlj",   "aij"};

/// One bibliographic entity: the clean record all duplicates derive from.
struct Entity {
  uint32_t id;
  std::vector<std::string> tokens;
};

Entity MakeEntity(uint32_t id, Rng* rng) {
  Entity entity;
  entity.id = id;
  size_t title_len = 4 + rng->Index(4);
  for (size_t i = 0; i < title_len; ++i) {
    entity.tokens.push_back(
        kTitleWords[rng->Index(std::size(kTitleWords))]);
  }
  size_t authors = 1 + rng->Index(3);
  for (size_t i = 0; i < authors; ++i) {
    entity.tokens.push_back(kSurnames[rng->Index(std::size(kSurnames))]);
  }
  entity.tokens.push_back(kVenues[rng->Index(std::size(kVenues))]);
  entity.tokens.push_back(std::to_string(1985 + rng->Index(20)));
  return entity;
}

/// Shared emission state captured by the StreamBuilder callbacks.
struct PoolState {
  std::deque<Record> pending;
  uint32_t next_entity = 0;
};

Record RecordFrom(const Entity& entity, Rng* rng, double corruption) {
  Record record;
  record.entity = entity.id + 1;  // 0 is reserved for "unset"
  record.tokens = entity.tokens;
  // Duplicate noise: token drops, typos, abbreviations.
  for (auto& token : record.tokens) {
    if (rng->Chance(corruption)) token = ApplyTypo(token, rng);
    if (token.size() > 3 && rng->Chance(corruption * 0.4)) {
      token = token.substr(0, 1) + ".";  // abbreviation
    }
  }
  if (record.tokens.size() > 4 && rng->Chance(corruption)) {
    record.tokens.erase(record.tokens.begin() +
                        rng->Index(record.tokens.size()));
  }
  record.text = JoinStrings(record.tokens, " ");
  return record;
}

}  // namespace

CoraLikeGenerator::CoraLikeGenerator() : CoraLikeGenerator(Options{}) {}

CoraLikeGenerator::CoraLikeGenerator(Options options)
    : options_(std::move(options)) {}

WorkloadStream CoraLikeGenerator::Generate() {
  // Pool-based emission: entities are created in chunks with their
  // duplicates, shuffled so duplicates of one entity spread over time.
  auto state = std::make_shared<PoolState>();
  Options opts = options_;

  auto refill = [state, opts](Rng* rng) {
    std::vector<Record> chunk;
    for (int e = 0; e < 60; ++e) {
      Entity entity = MakeEntity(state->next_entity++, rng);
      int copies = 1 + SampleDuplicateCount(opts.distribution,
                                            opts.duplicate_mean,
                                            opts.max_duplicates, rng);
      for (int c = 0; c < copies; ++c) {
        chunk.push_back(RecordFrom(entity, rng, c == 0 ? 0.02 : 0.12));
      }
    }
    rng->Shuffle(&chunk);
    for (auto& record : chunk) state->pending.push_back(std::move(record));
  };

  StreamBuilder builder(options_.seed);
  return builder.Build(
      options_.initial_count, options_.schedule,
      /*make_record=*/
      [state, refill](Rng* rng) {
        if (state->pending.empty()) refill(rng);
        Record record = std::move(state->pending.front());
        state->pending.pop_front();
        return record;
      },
      /*corrupt_record=*/
      [](const Record& old_record, Rng* rng) {
        Record record = old_record;
        for (auto& token : record.tokens) {
          if (rng->Chance(0.2)) token = ApplyTypo(token, rng);
        }
        record.text = JoinStrings(record.tokens, " ");
        return record;
      });
}

DatasetProfile CoraLikeGenerator::Profile() {
  DatasetProfile profile;
  profile.measure = std::make_unique<JaccardSimilarity>();
  profile.blocker = std::make_unique<TokenBlocker>(/*prefix_len=*/4);
  profile.min_similarity = 0.15;
  return profile;
}

}  // namespace dynamicc
