#include "workload/road_like.h"

#include <cmath>
#include <memory>

#include "data/similarity_measures.h"
#include "util/logging.h"

namespace dynamicc {

namespace {
// Wide enough that consecutive samples along a road (spacing ~10-20 units
// at the default densities) are graph neighbors; incremental methods can
// only merge/join across graph edges.
constexpr double kKernelScale = 12.0;

struct Road {
  // Waypoints as (x, y, elevation).
  std::vector<std::array<double, 3>> waypoints;
};
}  // namespace

RoadLikeGenerator::RoadLikeGenerator() : RoadLikeGenerator(Options{}) {}

RoadLikeGenerator::RoadLikeGenerator(Options options)
    : options_(std::move(options)) {}

WorkloadStream RoadLikeGenerator::Generate() {
  Options opts = options_;
  // Build the road network once.
  Rng setup(opts.seed * 613 + 9);
  auto roads = std::make_shared<std::vector<Road>>();
  for (int r = 0; r < opts.roads; ++r) {
    Road road;
    double x = setup.Uniform(0.0, opts.extent);
    double y = setup.Uniform(0.0, opts.extent);
    double elevation = setup.Uniform(0.0, 120.0);
    double heading = setup.Uniform(0.0, 2.0 * M_PI);
    road.waypoints.push_back({x, y, elevation});
    for (int s = 0; s < opts.segments_per_road; ++s) {
      heading += setup.Gaussian(0.0, 0.35);  // gentle curvature
      x += opts.segment_length * std::cos(heading);
      y += opts.segment_length * std::sin(heading);
      elevation += setup.Gaussian(0.0, 2.0);  // smooth elevation drift
      road.waypoints.push_back({x, y, elevation});
    }
    roads->push_back(std::move(road));
  }

  auto sample_point = [opts, roads](Rng* rng) {
    uint32_t road_id = static_cast<uint32_t>(rng->Index(roads->size()));
    const Road& road = (*roads)[road_id];
    size_t segment = rng->Index(road.waypoints.size() - 1);
    double t = rng->Uniform();
    const auto& a = road.waypoints[segment];
    const auto& b = road.waypoints[segment + 1];
    Record record;
    record.entity = road_id + 1;
    record.numeric = {
        a[0] + t * (b[0] - a[0]) + rng->Gaussian(0.0, opts.point_noise),
        a[1] + t * (b[1] - a[1]) + rng->Gaussian(0.0, opts.point_noise),
        a[2] + t * (b[2] - a[2]) + rng->Gaussian(0.0, opts.point_noise)};
    return record;
  };

  StreamBuilder builder(opts.seed);
  return builder.Build(
      opts.initial_count, opts.schedule,
      [sample_point](Rng* rng) { return sample_point(rng); },
      // Updates re-measure the point (fresh GPS fix, possibly elsewhere).
      [sample_point](const Record& old_record, Rng* rng) {
        (void)old_record;
        return sample_point(rng);
      });
}

double RoadLikeGenerator::SimilarityAtDistance(double distance) {
  return std::exp(-(distance * distance) /
                  (2.0 * kKernelScale * kKernelScale));
}

DatasetProfile RoadLikeGenerator::Profile() {
  DatasetProfile profile;
  profile.measure = std::make_unique<EuclideanSimilarity>(kKernelScale);
  profile.blocker = std::make_unique<GridBlocker>(2.5 * kKernelScale);
  profile.min_similarity = 0.05;
  return profile;
}

}  // namespace dynamicc
