#ifndef DYNAMICC_WORKLOAD_ACCESS_LIKE_H_
#define DYNAMICC_WORKLOAD_ACCESS_LIKE_H_

#include <cstdint>
#include <vector>

#include "workload/profile.h"
#include "workload/schedule.h"

namespace dynamicc {

/// Synthetic stand-in for the Amazon Access Samples dataset: numeric
/// feature vectors drawn from a Gaussian mixture (components = access
/// roles/groups). Euclidean similarity (Table 1); exercised by the DBSCAN
/// and k-means experiments (Fig. 5b/5d).
class AccessLikeGenerator {
 public:
  struct Options {
    size_t initial_count = 1000;
    std::vector<SnapshotSpec> schedule = DefaultSchedule("access");
    uint64_t seed = 41;
    int components = 32;
    int dims = 4;
    double component_stddev = 2.0;
    double space_extent = 120.0;
    /// Probability that an Update relocates the point to a different
    /// component (forcing a cluster-structure change).
    double relocate_probability = 0.3;
  };

  AccessLikeGenerator();
  explicit AccessLikeGenerator(Options options);

  static const char* Name() { return "access"; }

  WorkloadStream Generate();

  /// Gaussian-kernel Euclidean similarity + spatial grid blocking. The
  /// kernel scale is 2x the component stddev of the default options.
  static DatasetProfile Profile();

  /// Similarity value corresponding to Euclidean distance `distance` under
  /// the profile's kernel — lets DBSCAN configs express ε in distance.
  static double SimilarityAtDistance(double distance);

 private:
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_WORKLOAD_ACCESS_LIKE_H_
