#ifndef DYNAMICC_WORKLOAD_ROAD_LIKE_H_
#define DYNAMICC_WORKLOAD_ROAD_LIKE_H_

#include <cstdint>
#include <vector>

#include "workload/profile.h"
#include "workload/schedule.h"

namespace dynamicc {

/// Synthetic stand-in for the 3D Road Network (North Jutland) dataset:
/// (x, y, elevation) points sampled along randomly generated road
/// polylines with smooth elevation profiles and GPS-style noise. The paper
/// runs this at 100K→344K objects; the default here is scaled down
/// (configurable) — EXPERIMENTS.md records the scale used.
class RoadLikeGenerator {
 public:
  struct Options {
    size_t initial_count = 4000;
    std::vector<SnapshotSpec> schedule = DefaultSchedule("road");
    uint64_t seed = 53;
    int roads = 48;
    int segments_per_road = 14;
    double segment_length = 28.0;
    double extent = 1000.0;
    double point_noise = 1.2;
  };

  RoadLikeGenerator();
  explicit RoadLikeGenerator(Options options);

  static const char* Name() { return "road"; }

  WorkloadStream Generate();

  static DatasetProfile Profile();

  /// Similarity value at Euclidean distance `distance` under the profile's
  /// kernel (lets DBSCAN configs express ε in distance units).
  static double SimilarityAtDistance(double distance);

 private:
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_WORKLOAD_ROAD_LIKE_H_
