#ifndef DYNAMICC_WORKLOAD_FEBRL_H_
#define DYNAMICC_WORKLOAD_FEBRL_H_

#include <cstdint>
#include <vector>

#include "workload/distributions.h"
#include "workload/profile.h"
#include "workload/schedule.h"

namespace dynamicc {

/// Febrl-style synthetic person-record generator [5] (the paper's
/// Synthetic dataset): original person records plus duplicates with a
/// user-chosen distribution (uniform / Poisson / Zipf) and field-level
/// corruption. This is the only workload with Update operations (§7.2):
/// Febrl "allows us to generate similar objects as well as do
/// modifications to attribute values".
class FebrlGenerator {
 public:
  struct Options {
    size_t initial_count = 1200;
    std::vector<SnapshotSpec> schedule = DefaultSchedule("synthetic");
    uint64_t seed = 31;
    double duplicate_mean = 2.2;
    int max_duplicates = 7;
    DuplicateDistribution distribution = DuplicateDistribution::kZipf;
  };

  FebrlGenerator();
  explicit FebrlGenerator(Options options);

  static const char* Name() { return "synthetic"; }

  WorkloadStream Generate();

  /// Levenshtein + Jaccard combination (Table 1).
  static DatasetProfile Profile();

 private:
  Options options_;
};

}  // namespace dynamicc

#endif  // DYNAMICC_WORKLOAD_FEBRL_H_
